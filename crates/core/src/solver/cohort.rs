//! Cohort solves over an open subset of a fixed catalog.
//!
//! Serving layers (the `hta-server` platform, the `hta-crowd` simulator)
//! repeatedly solve instances whose tasks are an *open subset* of one
//! immutable catalog. Enumerating the `O(|T'|²)` positive-diversity edges
//! per solve dominates the pipeline; a catalog-level
//! [`DiversityEdgeCache`] amortizes that work across every solve. Reuse is
//! only sound when the subset is given in strictly increasing catalog
//! order — then [`DiversityEdgeCache::filter_sorted`] reproduces a fresh
//! enumerate-and-sort bit-for-bit and the solver output is byte-identical
//! to the uncached path. This module centralizes that soundness check so
//! each caller does not reimplement it.

use rand::Rng;

use crate::edges::DiversityEdgeCache;
use crate::instance::Instance;
use crate::solver::{SolveOutcome, Solver, SparseWarmState, WarmState};
use crate::sparse::SparseEdgeCache;

/// Solve `inst`, whose tasks are the catalog subset `open` (catalog
/// indices, one per local task id, in local order), reusing `cache` when
/// that is provably equivalent to a fresh solve.
///
/// The cached edge list is used only when all of the following hold,
/// otherwise the call falls back to [`Solver::solve`]:
///
/// * a cache is supplied,
/// * `open` is strictly increasing (so the filtered sublist of the global
///   sorted edge list equals enumerating and sorting the sub-instance),
/// * every index in `open` is in range for the cached catalog.
///
/// Callers holding a cache of uncertain provenance should additionally
/// gate on [`DiversityEdgeCache::valid_for`] against their catalog before
/// passing it here.
pub fn solve_open_subset(
    solver: &dyn Solver,
    inst: &Instance,
    open: &[usize],
    cache: Option<&DiversityEdgeCache>,
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let usable = cache.is_some_and(|c| {
        open.windows(2).all(|w| w[0] < w[1]) && open.last().is_none_or(|&g| g < c.n_tasks())
    });
    match cache {
        Some(cache) if usable => {
            let open_u32: Vec<u32> = open.iter().map(|&i| i as u32).collect();
            let edges = cache.filter_sorted(&open_u32);
            solver.solve_with_diversity_edges(inst, &edges, rng)
        }
        _ => solver.solve(inst, rng),
    }
}

/// Merge per-shard candidate pools (each a list of catalog indices) into
/// one joint open subset in the form [`solve_open_subset`] requires:
/// strictly increasing, duplicates collapsed.
///
/// This is the coordinator's entry point for sharded candidate
/// generation: each shard worker proposes the open tasks it owns, the
/// primary unions the proposals and runs **one** joint solve over the
/// merged subset, so assignment decisions stay centralized while
/// retrieval scales out. Pool membership is a set — input order carries
/// no information — so any partition of the same candidates merges to the
/// same subset and the downstream solve is byte-identical to a
/// single-process run over that pool.
pub fn merge_open_subsets(pools: &[Vec<usize>]) -> Vec<usize> {
    let mut merged: Vec<usize> = pools.iter().flatten().copied().collect();
    merged.sort_unstable();
    merged.dedup();
    merged
}

/// [`solve_open_subset`] carrying warm-start state between solves.
///
/// The warm path is taken only when *all* of [`solve_open_subset`]'s
/// conditions hold **and** the warm state is bound to the supplied cache
/// ([`WarmState::matches_cache`]) **and** the instance's task count equals
/// the open-subset length. Any violation degrades gracefully — first to the
/// plain edge-cache path, then to a cold solve — leaving `warm` untouched,
/// so a caller whose open set momentarily loses sortedness (e.g. a
/// downsampled candidate pool) pays only the cold cost for that call and
/// resumes warm solving on the next sorted one.
pub fn solve_open_subset_warm(
    solver: &dyn Solver,
    inst: &Instance,
    open: &[usize],
    cache: Option<&DiversityEdgeCache>,
    warm: Option<&mut WarmState>,
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let usable = cache.is_some_and(|c| {
        open.windows(2).all(|w| w[0] < w[1]) && open.last().is_none_or(|&g| g < c.n_tasks())
    });
    match (cache, warm) {
        (Some(cache), Some(warm))
            if usable && warm.matches_cache(cache) && inst.n_tasks() == open.len() =>
        {
            let open_u32: Vec<u32> = open.iter().map(|&i| i as u32).collect();
            solver.solve_warm(inst, cache, warm, &open_u32, rng)
        }
        _ => solve_open_subset(solver, inst, open, cache, rng),
    }
}

/// [`solve_open_subset_warm`] for catalogs past the dense edge-cache cap:
/// edges come from a pool-scoped [`SparseEdgeCache`] and the warm state is
/// a [`SparseWarmState`] epoch-synced to it.
///
/// The warm path is taken only when a cache and warm state are supplied,
/// `open` is strictly increasing and covered by the cache's pool members,
/// the warm state is bound to the cache's catalog, and the instance's task
/// count equals the open-subset length. Degradation mirrors the dense
/// helper: a usable cache with an unusable warm state takes the filtered-
/// edges path (leaving `warm` untouched); anything less solves cold. The
/// outcome is byte-identical to [`Solver::solve`] in every case.
pub fn solve_open_subset_sparse_warm(
    solver: &dyn Solver,
    inst: &Instance,
    open: &[usize],
    cache: Option<&SparseEdgeCache>,
    warm: Option<&mut SparseWarmState>,
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let open_u32: Vec<u32> = open.iter().map(|&i| i as u32).collect();
    let covered = cache.is_some_and(|c| {
        open.windows(2).all(|w| w[0] < w[1]) && c.member_positions(&open_u32).is_some()
    });
    match (cache, warm) {
        (Some(cache), Some(warm))
            if covered && warm.matches_cache(cache) && inst.n_tasks() == open.len() =>
        {
            solver.solve_warm_sparse(inst, cache, warm, &open_u32, rng)
        }
        (Some(cache), _) if covered => {
            solver.solve_with_diversity_edges(inst, &cache.filter_sorted(&open_u32), rng)
        }
        _ => solver.solve(inst, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::KeywordVec;
    use crate::metric::Jaccard;
    use crate::solver::HtaGre;
    use crate::task::{GroupId, Task, TaskId};
    use crate::worker::{Weights, Worker, WorkerId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                let mut kw = KeywordVec::new(16);
                kw.set(i % 16);
                kw.set((i * 3 + 1) % 16);
                Task::new(TaskId(i as u32), GroupId((i % 4) as u32), kw)
            })
            .collect()
    }

    fn sub_instance(tasks: &[Task], open: &[usize]) -> Instance {
        let local: Vec<Task> = open
            .iter()
            .enumerate()
            .map(|(li, &ci)| {
                Task::new(
                    TaskId(li as u32),
                    tasks[ci].group,
                    tasks[ci].keywords.clone(),
                )
            })
            .collect();
        let workers = vec![
            Worker::new(WorkerId(0), tasks[0].keywords.clone()).with_weights(Weights::balanced()),
            Worker::new(WorkerId(1), tasks[1].keywords.clone())
                .with_weights(Weights::from_alpha(0.7)),
        ];
        Instance::new(local, workers, 3).unwrap()
    }

    #[test]
    fn merged_subsets_are_sorted_unique_and_partition_invariant() {
        let a = vec![vec![5usize, 1, 9], vec![3, 5, 0], vec![]];
        let b = vec![vec![0usize, 9], vec![1], vec![3, 5, 5]];
        let merged = merge_open_subsets(&a);
        assert_eq!(merged, vec![0, 1, 3, 5, 9]);
        assert_eq!(merged, merge_open_subsets(&b), "partition-invariant");
        assert!(merge_open_subsets(&[]).is_empty());
        // The output satisfies solve_open_subset's strictly-increasing gate.
        assert!(merged.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cached_and_fresh_solves_are_identical() {
        let tasks = catalog(20);
        let cache = DiversityEdgeCache::build(&tasks, &Jaccard, 1);
        let solver = HtaGre::structured().without_flip();
        let open: Vec<usize> = vec![0, 2, 3, 5, 8, 11, 12, 15, 19];
        let inst = sub_instance(&tasks, &open);

        let mut rng1 = StdRng::seed_from_u64(9);
        let fresh = solver.solve(&inst, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(9);
        let cached = solve_open_subset(&solver, &inst, &open, Some(&cache), &mut rng2);
        assert_eq!(fresh.assignment, cached.assignment);
        assert_eq!(fresh.lsap_value.to_bits(), cached.lsap_value.to_bits());
    }

    #[test]
    fn unsorted_subset_falls_back_to_a_plain_solve() {
        let tasks = catalog(12);
        let cache = DiversityEdgeCache::build(&tasks, &Jaccard, 1);
        let solver = HtaGre::structured().without_flip();
        // Same subset, shuffled: local task ids no longer ascend with the
        // catalog ids, so edge reuse would mis-map endpoints. The helper
        // must detect this and solve from scratch.
        let open = vec![5usize, 1, 9, 3];
        let inst = sub_instance(&tasks, &open);
        let mut rng1 = StdRng::seed_from_u64(4);
        let fresh = solver.solve(&inst, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(4);
        let out = solve_open_subset(&solver, &inst, &open, Some(&cache), &mut rng2);
        assert_eq!(fresh.assignment, out.assignment);
    }

    #[test]
    fn out_of_range_subset_falls_back() {
        let tasks = catalog(6);
        let cache = DiversityEdgeCache::build(&tasks[..4], &Jaccard, 1);
        let solver = HtaGre::structured().without_flip();
        let open = vec![1usize, 3, 5]; // 5 is outside the 4-task cache
        let inst = sub_instance(&tasks, &open);
        let mut rng = StdRng::seed_from_u64(2);
        // Must not panic or read garbage; falls back to a fresh solve.
        let out = solve_open_subset(&solver, &inst, &open, Some(&cache), &mut rng);
        assert!(out.assignment.validate(&inst).is_ok());
    }

    fn pool_cache(tasks: &[Task], members: &[u32]) -> SparseEdgeCache {
        use crate::edges::keywords_fingerprint;
        use crate::metric::Distance;
        let fp = keywords_fingerprint(tasks.iter().map(|t| &t.keywords));
        let mut cache = SparseEdgeCache::new(fp, tasks.len());
        cache.refresh(members, |u, v| {
            Jaccard.dist(&tasks[u as usize].keywords, &tasks[v as usize].keywords)
        });
        cache
    }

    #[test]
    fn sparse_warm_cold_and_filtered_solves_are_identical() {
        let tasks = catalog(30);
        let members: Vec<u32> = (0..30).filter(|m| m % 7 != 3).collect();
        let cache = pool_cache(&tasks, &members);
        let mut warm = crate::solver::SparseWarmState::new(&cache);
        let solver = HtaGre::structured().without_flip();

        // A churn sequence of open subsets of the pool members.
        let opens: Vec<Vec<usize>> = vec![
            members.iter().map(|&m| m as usize).collect(),
            members
                .iter()
                .filter(|&&m| m != 4 && m != 19)
                .map(|&m| m as usize)
                .collect(),
            members
                .iter()
                .filter(|&&m| m % 2 == 0)
                .map(|&m| m as usize)
                .collect(),
        ];
        for (step, open) in opens.iter().enumerate() {
            let inst = sub_instance(&tasks, open);
            let cold = solver.solve(&inst, &mut StdRng::seed_from_u64(31));
            let filtered = solve_open_subset_sparse_warm(
                &solver,
                &inst,
                open,
                Some(&cache),
                None,
                &mut StdRng::seed_from_u64(31),
            );
            let warmed = solve_open_subset_sparse_warm(
                &solver,
                &inst,
                open,
                Some(&cache),
                Some(&mut warm),
                &mut StdRng::seed_from_u64(31),
            );
            assert_eq!(cold.assignment, filtered.assignment, "step {step}");
            assert_eq!(cold.assignment, warmed.assignment, "step {step}");
            assert_eq!(
                cold.lsap_value.to_bits(),
                warmed.lsap_value.to_bits(),
                "step {step}"
            );
        }
    }

    #[test]
    fn sparse_warm_survives_pool_drift_via_delta_replay() {
        use crate::metric::Distance;
        let tasks = catalog(24);
        let members: Vec<u32> = (0..16).collect();
        let mut cache = pool_cache(&tasks, &members);
        let mut warm = crate::solver::SparseWarmState::new(&cache);
        let solver = HtaGre::structured().without_flip();

        let open: Vec<usize> = (0..16usize).filter(|&m| m != 5).collect();
        let inst = sub_instance(&tasks, &open);
        solve_open_subset_sparse_warm(
            &solver,
            &inst,
            &open,
            Some(&cache),
            Some(&mut warm),
            &mut StdRng::seed_from_u64(8),
        );

        // Pool drifts; the cache refresh bumps the epoch and the next warm
        // solve must absorb the member delta, matching the cold solve bit
        // for bit.
        let drifted: Vec<u32> = (2..20).collect();
        cache.refresh(&drifted, |u, v| {
            Jaccard.dist(&tasks[u as usize].keywords, &tasks[v as usize].keywords)
        });
        let open2: Vec<usize> = drifted.iter().map(|&m| m as usize).collect();
        let inst2 = sub_instance(&tasks, &open2);
        let cold = solver.solve(&inst2, &mut StdRng::seed_from_u64(9));
        let warmed = solve_open_subset_sparse_warm(
            &solver,
            &inst2,
            &open2,
            Some(&cache),
            Some(&mut warm),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(cold.assignment, warmed.assignment);
        assert_eq!(cold.lsap_value.to_bits(), warmed.lsap_value.to_bits());
        assert!(
            !warm.last_rebind(),
            "an incremental refresh replays the cache delta, no rebind"
        );
    }

    #[test]
    fn sparse_open_set_outside_the_pool_falls_back_cold() {
        let tasks = catalog(20);
        let cache = pool_cache(&tasks, &(0..10).collect::<Vec<_>>());
        let mut warm = crate::solver::SparseWarmState::new(&cache);
        let solver = HtaGre::structured().without_flip();
        // 15 is not a pool member: the helper must not touch the cache.
        let open = vec![1usize, 3, 15];
        let inst = sub_instance(&tasks, &open);
        let cold = solver.solve(&inst, &mut StdRng::seed_from_u64(5));
        let out = solve_open_subset_sparse_warm(
            &solver,
            &inst,
            &open,
            Some(&cache),
            Some(&mut warm),
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(cold.assignment, out.assignment);
    }
}
