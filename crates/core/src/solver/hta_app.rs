//! HTA-APP (Algorithm 1): the ¼-approximation algorithm.
//!
//! HTA-APP adapts Arkin et al.'s MaxQAP approximation: greedy diversity
//! matching, an *exactly solved* auxiliary LSAP (Hungarian family — here
//! Jonker–Volgenant), and a random ½-flip of matched pairs. Runs in
//! `O(|T|³)` (Lemma 3), dominated by the LSAP.

use rand::Rng;

use hta_matching::WeightedEdge;

use crate::edges::DiversityEdgeCache;
use crate::instance::Instance;
use crate::solver::qap_pipeline::{
    solve_via_qap, solve_via_qap_sparse_warm, solve_via_qap_warm, solve_via_qap_with_edges,
    PipelineOptions,
};
use crate::solver::{
    CostRepresentation, LsapStrategy, SolveOutcome, Solver, SparseWarmState, WarmState,
};
use crate::sparse::SparseEdgeCache;

/// The HTA-APP solver. See [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct HtaApp {
    representation: CostRepresentation,
    lsap: LsapStrategy,
    random_flip: bool,
    threads: usize,
}

impl HtaApp {
    /// Paper-faithful configuration: dense cost matrix, exact JV LSAP,
    /// random flip enabled, automatic thread count.
    pub fn new() -> Self {
        Self {
            representation: CostRepresentation::Dense,
            lsap: LsapStrategy::ExactJv,
            random_flip: true,
            threads: 0,
        }
    }

    /// Use the column-class cost representation (`O(|T|·|W|)` memory instead
    /// of `O(|T|²)`) — our structured extension, same optimum.
    pub fn structured() -> Self {
        Self {
            representation: CostRepresentation::Classed,
            lsap: LsapStrategy::StructuredExact,
            ..Self::new()
        }
    }

    /// Replace the exact JV LSAP with the auction algorithm (ablation).
    pub fn with_auction_lsap(mut self) -> Self {
        self.lsap = LsapStrategy::Auction;
        self
    }

    /// Replace the JV LSAP with the classic Hungarian algorithm — the
    /// solver family the paper actually timed (Carpaneto et al.'s code).
    /// Use for timing-figure fidelity; JV dominates it in practice.
    pub fn with_classic_hungarian(mut self) -> Self {
        self.lsap = LsapStrategy::ExactClassicHungarian;
        self
    }

    /// Disable the random flip step (ablation; voids the ¼ guarantee's
    /// expectation argument).
    pub fn without_flip(mut self) -> Self {
        self.random_flip = false;
        self
    }

    /// Pin the pipeline thread count (`0` = auto: `HTA_SOLVER_THREADS`,
    /// then the hardware default). Output is byte-identical at any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn options(&self) -> PipelineOptions {
        PipelineOptions {
            lsap: self.lsap,
            representation: self.representation,
            random_flip: self.random_flip,
            threads: self.threads,
        }
    }
}

impl Default for HtaApp {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver for HtaApp {
    fn name(&self) -> &'static str {
        match (self.representation, self.lsap) {
            (CostRepresentation::Dense, LsapStrategy::ExactJv) => "hta-app",
            (CostRepresentation::Classed, _) => "hta-app-structured",
            (_, LsapStrategy::Auction) => "hta-app-auction",
            (_, LsapStrategy::ExactClassicHungarian) => "hta-app-hungarian",
            _ => "hta-app-variant",
        }
    }

    fn solve(&self, inst: &Instance, rng: &mut dyn Rng) -> SolveOutcome {
        solve_via_qap(inst, self.options(), rng)
    }

    fn solve_with_diversity_edges(
        &self,
        inst: &Instance,
        sorted_edges: &[WeightedEdge],
        rng: &mut dyn Rng,
    ) -> SolveOutcome {
        solve_via_qap_with_edges(inst, self.options(), sorted_edges, rng)
    }

    fn solve_warm(
        &self,
        inst: &Instance,
        cache: &DiversityEdgeCache,
        warm: &mut WarmState,
        open: &[u32],
        rng: &mut dyn Rng,
    ) -> SolveOutcome {
        solve_via_qap_warm(inst, self.options(), cache, warm, open, rng)
    }

    fn solve_warm_sparse(
        &self,
        inst: &Instance,
        cache: &SparseEdgeCache,
        warm: &mut SparseWarmState,
        open: &[u32],
        rng: &mut dyn Rng,
    ) -> SolveOutcome {
        solve_via_qap_sparse_warm(inst, self.options(), cache, warm, open, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::paper_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solves_the_paper_example_feasibly() {
        let inst = paper_example();
        let mut rng = StdRng::seed_from_u64(42);
        let out = HtaApp::new().solve(&inst, &mut rng);
        out.assignment.validate(&inst).unwrap();
        assert_eq!(out.assignment.assigned_count(), 6);
        // Each worker receives exactly X_max = 3 tasks (8 >= 2*3).
        assert_eq!(out.assignment.tasks_of(0).len(), 3);
        assert_eq!(out.assignment.tasks_of(1).len(), 3);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let inst = paper_example();
        let a = HtaApp::new().solve(&inst, &mut StdRng::seed_from_u64(5));
        let b = HtaApp::new().solve(&inst, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.assignment.sets(), b.assignment.sets());
    }

    #[test]
    fn structured_variant_matches_dense_lsap_value() {
        let inst = paper_example();
        let dense = HtaApp::new()
            .without_flip()
            .solve(&inst, &mut StdRng::seed_from_u64(1));
        let structured = HtaApp::structured()
            .without_flip()
            .solve(&inst, &mut StdRng::seed_from_u64(1));
        assert!((dense.lsap_value - structured.lsap_value).abs() < 1e-9);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(HtaApp::new().name(), "hta-app");
        assert_eq!(HtaApp::structured().name(), "hta-app-structured");
        assert_eq!(HtaApp::new().with_auction_lsap().name(), "hta-app-auction");
        assert_eq!(
            HtaApp::new().with_classic_hungarian().name(),
            "hta-app-hungarian"
        );
    }

    #[test]
    fn classic_hungarian_matches_jv_lsap_value() {
        let inst = paper_example();
        let jv = HtaApp::new()
            .without_flip()
            .solve(&inst, &mut StdRng::seed_from_u64(1));
        let classic = HtaApp::new()
            .with_classic_hungarian()
            .without_flip()
            .solve(&inst, &mut StdRng::seed_from_u64(1));
        assert!((jv.lsap_value - classic.lsap_value).abs() < 1e-9);
    }
}
