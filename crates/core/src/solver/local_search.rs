//! Local-search post-optimization of assignments (extension).
//!
//! HTA-APP/HTA-GRE optimize an auxiliary *linear* proxy of the quadratic
//! objective, so their output usually leaves easy gains on the table. This
//! hill climber repeatedly applies the best of three move types until no
//! move improves Eq. 3:
//!
//! * **swap** — exchange two tasks between two workers;
//! * **replace** — swap an assigned task with an unassigned one;
//! * **move** — shift a task to a worker with spare capacity.
//!
//! The search is anytime (bounded by `max_passes`) and preserves C1/C2 by
//! construction. Used standalone ([`LocalSearch`] wraps any inner solver)
//! and in the `ablations` bench to quantify how far the approximations sit
//! from a local optimum.

use rand::Rng;

use crate::assignment::Assignment;
use crate::instance::Instance;
use crate::solver::{SolveOutcome, Solver};

/// Wraps an inner solver and improves its assignment to a local optimum of
/// the true objective.
pub struct LocalSearch<S> {
    inner: S,
    max_passes: usize,
}

impl<S: Solver> LocalSearch<S> {
    /// Improve `inner`'s output; `max_passes` bounds full improvement
    /// sweeps (each pass is `O(|T|·|W|·X_max)` move evaluations).
    pub fn new(inner: S, max_passes: usize) -> Self {
        Self { inner, max_passes }
    }
}

impl<S: Solver> Solver for LocalSearch<S> {
    fn name(&self) -> &'static str {
        "local-search"
    }

    fn solve(&self, inst: &Instance, rng: &mut dyn Rng) -> SolveOutcome {
        let mut out = self.inner.solve(inst, rng);
        let improved = improve(inst, &out.assignment, self.max_passes);
        out.assignment = improved;
        debug_assert!(out.assignment.validate(inst).is_ok());
        out
    }
}

/// The marginal value task `t` contributes to worker `q`'s set `set`
/// (which must not contain `t`).
fn contribution(inst: &Instance, q: usize, set: &[usize], t: usize) -> f64 {
    // Δ = motiv(S) − motiv(S\{t})
    //   = 2α·Σ_{k∈S\t} d(t,k) + β·(TR(S\t) + (|S|−1)·rel(t))
    // `set` may be given either as S (containing t) or as S\{t}; `others`
    // is |S|−1 in both conventions.
    let others: Vec<usize> = set.iter().copied().filter(|&k| k != t).collect();
    let sum_div: f64 = others.iter().map(|&k| inst.diversity(t, k)).sum();
    let tr_others: f64 = others.iter().map(|&k| inst.rel(q, k)).sum();
    2.0 * inst.alpha(q) * sum_div
        + inst.beta(q) * (tr_others + others.len() as f64 * inst.rel(q, t))
}

/// Run improvement passes until a local optimum or the pass budget.
pub fn improve(inst: &Instance, start: &Assignment, max_passes: usize) -> Assignment {
    let mut sets: Vec<Vec<usize>> = start.sets().to_vec();
    let n = inst.n_tasks();
    let nw = inst.n_workers();

    let mut assigned_to = vec![usize::MAX; n];
    for (q, set) in sets.iter().enumerate() {
        for &t in set {
            assigned_to[t] = q;
        }
    }

    for _ in 0..max_passes {
        let mut any_improvement = false;

        // -- move / replace: every task × every worker ----------------------
        for t in 0..n {
            let from = assigned_to[t];
            for q in 0..nw {
                if from == q {
                    continue;
                }
                if from == usize::MAX {
                    // t unassigned: try replacing each member of q, or
                    // filling spare capacity.
                    if sets[q].len() < inst.xmax() {
                        let gain = {
                            let set = &sets[q];
                            let mut with_t = set.clone();
                            with_t.push(t);
                            contribution(inst, q, &with_t, t)
                        };
                        if gain > 1e-12 {
                            sets[q].push(t);
                            assigned_to[t] = q;
                            any_improvement = true;
                            break;
                        }
                    } else {
                        // replace the weakest member if t is stronger.
                        let mut best: Option<(f64, usize)> = None;
                        for (i, &u) in sets[q].iter().enumerate() {
                            let loss = contribution(inst, q, &sets[q], u);
                            let mut candidate = sets[q].clone();
                            candidate[i] = t;
                            let gain = contribution(inst, q, &candidate, t);
                            let delta = gain - loss;
                            if delta > 1e-9 && best.is_none_or(|(b, _)| delta > b) {
                                best = Some((delta, i));
                            }
                        }
                        if let Some((_, i)) = best {
                            let u = sets[q][i];
                            sets[q][i] = t;
                            assigned_to[t] = q;
                            assigned_to[u] = usize::MAX;
                            any_improvement = true;
                            break;
                        }
                    }
                } else if sets[q].len() < inst.xmax() {
                    // move t from `from` to q.
                    let loss = contribution(inst, from, &sets[from], t);
                    let gain = {
                        let mut with_t = sets[q].clone();
                        with_t.push(t);
                        contribution(inst, q, &with_t, t)
                    };
                    if gain - loss > 1e-9 {
                        sets[from].retain(|&u| u != t);
                        sets[q].push(t);
                        assigned_to[t] = q;
                        any_improvement = true;
                        break;
                    }
                }
            }
        }

        // -- swap: pairs of assigned tasks across workers ------------------
        for qa in 0..nw {
            for qb in (qa + 1)..nw {
                let mut best: Option<(f64, usize, usize)> = None;
                for (i, &ta) in sets[qa].iter().enumerate() {
                    for (j, &tb) in sets[qb].iter().enumerate() {
                        let before = contribution(inst, qa, &sets[qa], ta)
                            + contribution(inst, qb, &sets[qb], tb);
                        let mut ca = sets[qa].clone();
                        ca[i] = tb;
                        let mut cb = sets[qb].clone();
                        cb[j] = ta;
                        let after =
                            contribution(inst, qa, &ca, tb) + contribution(inst, qb, &cb, ta);
                        let delta = after - before;
                        if delta > 1e-9 && best.is_none_or(|(b, _, _)| delta > b) {
                            best = Some((delta, i, j));
                        }
                    }
                }
                if let Some((_, i, j)) = best {
                    let (ta, tb) = (sets[qa][i], sets[qb][j]);
                    sets[qa][i] = tb;
                    sets[qb][j] = ta;
                    assigned_to[ta] = qb;
                    assigned_to[tb] = qa;
                    any_improvement = true;
                }
            }
        }

        if !any_improvement {
            break;
        }
    }
    Assignment::from_sets(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{ExactSolver, HtaGre, RandomAssign};
    use crate::worker::Weights;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_instance(seed: u64, n: usize, nw: usize, xmax: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<Weights> = (0..nw).map(|_| Weights::from_alpha(rng.random())).collect();
        let rel: Vec<f64> = (0..nw * n).map(|_| rng.random()).collect();
        let mut div = vec![0.0; n * n];
        for k in 0..n {
            for l in (k + 1)..n {
                let d = 0.5 + 0.5 * rng.random::<f64>();
                div[k * n + l] = d;
                div[l * n + k] = d;
            }
        }
        Instance::from_matrices(n, &weights, rel, div, xmax).unwrap()
    }

    #[test]
    fn never_decreases_the_objective() {
        for seed in 0..10 {
            let inst = random_instance(seed, 12, 3, 3);
            let mut rng = StdRng::seed_from_u64(seed);
            let base = RandomAssign.solve(&inst, &mut rng).assignment;
            let improved = improve(&inst, &base, 50);
            improved.validate(&inst).unwrap();
            assert!(
                improved.objective(&inst) >= base.objective(&inst) - 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn reaches_the_optimum_on_tiny_instances() {
        // On small instances, local search from random usually reaches the
        // exact optimum; we require it at least to close most of the gap.
        let mut reached = 0;
        for seed in 0..8 {
            let inst = random_instance(seed + 100, 7, 2, 2);
            let mut rng = StdRng::seed_from_u64(seed);
            let opt = ExactSolver
                .solve(&inst, &mut StdRng::seed_from_u64(0))
                .assignment
                .objective(&inst);
            let base = RandomAssign.solve(&inst, &mut rng).assignment;
            let improved = improve(&inst, &base, 100).objective(&inst);
            assert!(improved <= opt + 1e-9);
            if improved >= opt - 1e-6 {
                reached += 1;
            }
        }
        assert!(
            reached >= 4,
            "local search reached the optimum only {reached}/8 times"
        );
    }

    #[test]
    fn improves_hta_gre_output() {
        let inst = random_instance(7, 14, 3, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let base = HtaGre::new().solve(&inst, &mut rng).assignment;
        let improved = improve(&inst, &base, 50);
        assert!(improved.objective(&inst) >= base.objective(&inst) - 1e-9);
    }

    #[test]
    fn wrapper_solver_is_feasible_and_at_least_as_good() {
        let inst = random_instance(9, 10, 2, 3);
        let base = HtaGre::new()
            .solve(&inst, &mut StdRng::seed_from_u64(1))
            .assignment
            .objective(&inst);
        let wrapped =
            LocalSearch::new(HtaGre::new(), 20).solve(&inst, &mut StdRng::seed_from_u64(1));
        wrapped.assignment.validate(&inst).unwrap();
        assert!(wrapped.assignment.objective(&inst) >= base - 1e-9);
    }

    #[test]
    fn zero_passes_is_identity() {
        let inst = random_instance(3, 8, 2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let base = RandomAssign.solve(&inst, &mut rng).assignment;
        let same = improve(&inst, &base, 0);
        assert_eq!(same.objective(&inst), base.objective(&inst));
    }
}
