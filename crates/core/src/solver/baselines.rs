//! Baseline assignment strategies.
//!
//! * [`RandomAssign`] — uniformly random feasible assignment; the cold-start
//!   assigner of the paper's platform (Section V-C) and our fourth online
//!   arm.
//! * [`GreedyRelevance`] — rank `(worker, task)` pairs by relevance and
//!   assign greedily; a natural self-appointment baseline.
//! * [`GreedyMotivation`] — repeatedly give the `(worker, task)` pair with
//!   the highest marginal motivation gain; a strong heuristic without a
//!   guarantee, used as an upper-ish reference in ablations.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::assignment::Assignment;
use crate::instance::Instance;
use crate::solver::{PhaseTimings, SolveOutcome, Solver};

fn outcome(assignment: Assignment, start: std::time::Instant) -> SolveOutcome {
    SolveOutcome {
        assignment,
        timings: PhaseTimings {
            edge_enum: std::time::Duration::ZERO,
            matching: std::time::Duration::ZERO,
            lsap: std::time::Duration::ZERO,
            total: start.elapsed(),
        },
        lsap_value: 0.0,
    }
}

/// Uniformly random feasible assignment: shuffle tasks, deal them to
/// workers round-robin until every worker holds `X_max`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomAssign;

impl Solver for RandomAssign {
    fn name(&self) -> &'static str {
        "random"
    }

    fn solve(&self, inst: &Instance, rng: &mut dyn Rng) -> SolveOutcome {
        let start = std::time::Instant::now();
        let mut order: Vec<usize> = (0..inst.n_tasks()).collect();
        order.shuffle(rng);
        let mut a = Assignment::empty(inst.n_workers());
        let mut q = 0;
        let capacity = inst.n_workers() * inst.xmax();
        for &t in order.iter().take(capacity) {
            // Round-robin so set sizes stay balanced.
            a.push(q, t);
            q = (q + 1) % inst.n_workers();
        }
        debug_assert!(a.validate(inst).is_ok());
        outcome(a, start)
    }
}

/// Greedy by relevance: consider all `(worker, task)` pairs in decreasing
/// `rel(w, t)` order; assign when both the task is free and the worker has
/// spare capacity. Deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRelevance;

impl Solver for GreedyRelevance {
    fn name(&self) -> &'static str {
        "greedy-relevance"
    }

    fn solve(&self, inst: &Instance, _rng: &mut dyn Rng) -> SolveOutcome {
        let start = std::time::Instant::now();
        let n = inst.n_tasks();
        let nw = inst.n_workers();
        let mut pairs: Vec<(f64, u32, u32)> = Vec::with_capacity(n * nw);
        for q in 0..nw {
            for t in 0..n {
                pairs.push((inst.rel(q, t), q as u32, t as u32));
            }
        }
        pairs.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("relevance must not be NaN")
                .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
        });
        let mut a = Assignment::empty(nw);
        let mut taken = vec![false; n];
        let mut load = vec![0usize; nw];
        for &(_, q, t) in &pairs {
            let (q, t) = (q as usize, t as usize);
            if !taken[t] && load[q] < inst.xmax() {
                taken[t] = true;
                load[q] += 1;
                a.push(q, t);
            }
        }
        debug_assert!(a.validate(inst).is_ok());
        outcome(a, start)
    }
}

/// Greedy by marginal motivation: repeatedly pick the `(worker, task)` pair
/// maximizing the increase of Eq. 3, i.e.
/// `Δ = 2·α·Σ_{k∈T_w} d(t, k) + β·(TR(T_w) + |T_w|·rel(t))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyMotivation;

impl GreedyMotivation {
    /// The exact marginal gain of adding `t` to worker `q`'s current `set`.
    pub fn marginal_gain(inst: &Instance, q: usize, set: &[usize], t: usize) -> f64 {
        let sum_div: f64 = set.iter().map(|&k| inst.diversity(t, k)).sum();
        let tr: f64 = set.iter().map(|&k| inst.rel(q, k)).sum();
        2.0 * inst.alpha(q) * sum_div + inst.beta(q) * (tr + set.len() as f64 * inst.rel(q, t))
    }
}

impl Solver for GreedyMotivation {
    fn name(&self) -> &'static str {
        "greedy-motivation"
    }

    fn solve(&self, inst: &Instance, _rng: &mut dyn Rng) -> SolveOutcome {
        let start = std::time::Instant::now();
        let n = inst.n_tasks();
        let nw = inst.n_workers();
        let mut a = Assignment::empty(nw);
        let mut taken = vec![false; n];
        let rounds = (nw * inst.xmax()).min(n);
        for _ in 0..rounds {
            let mut best: Option<(f64, usize, usize)> = None;
            for q in 0..nw {
                if a.tasks_of(q).len() >= inst.xmax() {
                    continue;
                }
                for (t, &is_taken) in taken.iter().enumerate() {
                    if is_taken {
                        continue;
                    }
                    let gain = Self::marginal_gain(inst, q, a.tasks_of(q), t);
                    let better = match best {
                        None => true,
                        Some((g, bq, bt)) => {
                            gain > g + 1e-15 || ((gain - g).abs() <= 1e-15 && (q, t) < (bq, bt))
                        }
                    };
                    if better {
                        best = Some((gain, q, t));
                    }
                }
            }
            match best {
                Some((_, q, t)) => {
                    taken[t] = true;
                    a.push(q, t);
                }
                None => break,
            }
        }
        debug_assert!(a.validate(inst).is_ok());
        outcome(a, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Weights;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inst(n: usize, nw: usize, xmax: usize) -> Instance {
        let rel: Vec<f64> = (0..nw * n).map(|i| (i % 10) as f64 / 10.0).collect();
        let mut div = vec![0.5; n * n];
        for k in 0..n {
            div[k * n + k] = 0.0;
        }
        Instance::from_matrices(n, &vec![Weights::balanced(); nw], rel, div, xmax).unwrap()
    }

    #[test]
    fn random_assign_is_feasible_and_full() {
        let i = inst(10, 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = RandomAssign.solve(&i, &mut rng);
        out.assignment.validate(&i).unwrap();
        assert_eq!(out.assignment.assigned_count(), 6);
        assert_eq!(out.assignment.tasks_of(0).len(), 3);
    }

    #[test]
    fn random_assign_handles_scarce_tasks() {
        let i = inst(3, 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = RandomAssign.solve(&i, &mut rng);
        out.assignment.validate(&i).unwrap();
        assert_eq!(out.assignment.assigned_count(), 3);
    }

    #[test]
    fn greedy_relevance_prefers_high_rel() {
        // 1 worker; rel = [0.0, 0.1, ..., 0.9] cyclically — top tasks by rel
        // for worker 0 over 10 tasks are t9 (0.9), t8 (0.8).
        let i = inst(10, 1, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let out = GreedyRelevance.solve(&i, &mut rng);
        let mut set = out.assignment.tasks_of(0).to_vec();
        set.sort_unstable();
        assert_eq!(set, vec![8, 9]);
    }

    #[test]
    fn greedy_relevance_deterministic() {
        let i = inst(12, 3, 2);
        let a = GreedyRelevance.solve(&i, &mut StdRng::seed_from_u64(1));
        let b = GreedyRelevance.solve(&i, &mut StdRng::seed_from_u64(2));
        assert_eq!(a.assignment.sets(), b.assignment.sets());
    }

    #[test]
    fn greedy_motivation_marginal_gain_formula() {
        let i = inst(4, 1, 3);
        // set = {0}; adding t=1:
        // Δ = 2*0.5*d(1,0) + 0.5*(rel(0) + 1*rel(1)) with rel(0)=0.0, rel(1)=0.1.
        let gain = GreedyMotivation::marginal_gain(&i, 0, &[0], 1);
        let expect = 2.0 * 0.5 * 0.5 + 0.5 * (0.0 + 0.1);
        assert!((gain - expect).abs() < 1e-12);
    }

    #[test]
    fn greedy_motivation_is_feasible_and_competitive() {
        let i = inst(10, 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = GreedyMotivation.solve(&i, &mut rng);
        out.assignment.validate(&i).unwrap();
        assert_eq!(out.assignment.assigned_count(), 6);
        // It should never lose to random on its own objective (statistical
        // in general; deterministic here because gains dominate).
        let rnd = RandomAssign.solve(&i, &mut StdRng::seed_from_u64(2));
        assert!(out.assignment.objective(&i) >= rnd.assignment.objective(&i) - 1e-9);
    }
}
