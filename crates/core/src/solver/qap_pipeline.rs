//! The shared QAP pipeline behind HTA-APP and HTA-GRE (Algorithms 1 and 2).
//!
//! Both algorithms are identical except for how the auxiliary LSAP is
//! solved (Algorithm 1 line 11 vs Algorithm 2 line 11):
//!
//! 1. map the instance to MaxQAP matrices A, B, C (implicitly — only the
//!    clique structure, `b_M`, and `degA` are needed);
//! 2. compute a greedy maximum-weight matching `M_B` on the diversity graph;
//! 3. build the LSAP profits `f_{k,l} = b_M(t_k)·degA_l + c_{k,l}`;
//! 4. solve the LSAP (exactly, greedily, or with an alternative solver);
//! 5. randomly flip the images of each matched pair with probability ½
//!    (lines 12–16 — required by the expectation argument in Theorem 4);
//! 6. read the assignment off the permutation (Eq. 7).
//!
//! Instances with fewer than `|W|·X_max` tasks are padded with *virtual*
//! tasks (zero diversity, zero relevance) so the clique mapping stays
//! well-formed; virtual rows are dropped when building the assignment.
//!
//! # Parallelism and determinism
//!
//! Four stages run on `threads` scoped threads (resolved through
//! [`hta_par::solver_threads`]; `0` = auto): diversity-edge enumeration
//! (row-chunked, concatenated in chunk order), the edge sort inside the
//! greedy matching (per-chunk sorts + a chunk-order-stable merge),
//! profit-matrix materialization (row chunks), and the LSAP itself when the
//! strategy supports it (threaded greedy; synchronous-Jacobi auction). Every
//! parallel stage is engineered to produce **byte-identical** output at any
//! thread count — same assignment, same `lsap_value` bits — so the thread
//! knob is purely a performance setting.

use std::time::Instant;

use rand::{Rng, RngExt};

use hta_matching::lsap::{auction, greedy as lsap_greedy, hungarian, jv, structured};
use hta_matching::{
    greedy_matching_presorted, greedy_matching_with_threads, ClassedCosts, CostMatrix, DenseMatrix,
    Matching, WeightedEdge,
};

use crate::edges::{enumerate_positive_edges, DiversityEdgeCache};
use crate::instance::Instance;
use crate::qap::{assignment_from_permutation, worker_of_vertex};
use crate::solver::sparse_warm::SparseWarmState;
use crate::solver::warm::WarmState;
use crate::solver::{PhaseTimings, SolveOutcome};
use crate::sparse::SparseEdgeCache;

/// Which LSAP solver to run in step 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsapStrategy {
    /// Exact Jonker–Volgenant (the Hungarian-family solver of HTA-APP).
    ExactJv,
    /// Exact classic Hungarian (Kuhn–Munkres) without JV's reduction
    /// phases — closest to the Carpaneto-era code the paper timed.
    ExactClassicHungarian,
    /// ½-approximate greedy matching (HTA-GRE).
    Greedy,
    /// Bertsekas auction with ε-scaling (ablation). Runs the synchronous
    /// Jacobi variant so results are identical at any thread count.
    Auction,
    /// Exact transportation solver over column classes (ablation).
    StructuredExact,
}

/// How the LSAP profit matrix is materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostRepresentation {
    /// Dense `n × n` (`O(n²)` memory) — faithful to the paper's setup.
    Dense,
    /// Column-class form (`O(n·|W|)` memory) — our structured extension.
    Classed,
}

/// Tuning knobs shared by HTA-APP and HTA-GRE.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    pub lsap: LsapStrategy,
    pub representation: CostRepresentation,
    /// Apply the random ½-flip of matched pairs (disable only for the
    /// ablation study; the approximation proof needs it).
    pub random_flip: bool,
    /// Solver threads: `0` = auto (`HTA_SOLVER_THREADS`, then the hardware
    /// default). Results are byte-identical at any value.
    pub threads: usize,
}

pub(crate) fn solve_via_qap(
    inst: &Instance,
    opts: PipelineOptions,
    rng: &mut dyn Rng,
) -> SolveOutcome {
    solve_via_qap_impl(inst, opts, None, rng)
}

/// [`solve_via_qap`] reusing a precomputed, `edge_order`-sorted
/// positive-diversity edge list (local task indices) — skips edge
/// enumeration and the matching sort entirely.
pub(crate) fn solve_via_qap_with_edges(
    inst: &Instance,
    opts: PipelineOptions,
    sorted_edges: &[WeightedEdge],
    rng: &mut dyn Rng,
) -> SolveOutcome {
    solve_via_qap_impl(inst, opts, Some(sorted_edges), rng)
}

fn solve_via_qap_impl(
    inst: &Instance,
    opts: PipelineOptions,
    presorted: Option<&[WeightedEdge]>,
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let t_start = Instant::now();
    let threads = hta_par::solver_threads(opts.threads);
    let n_real = inst.n_tasks();
    let nw = inst.n_workers();
    let xmax = inst.xmax();
    // Pad so every clique has X_max vertices.
    let n = n_real.max(nw * xmax);

    // ---- Step 2: greedy max-weight matching M_B on diversity -------------
    let (mb, edge_enum_time, matching_time) = match presorted {
        Some(edges) => {
            let t_matching = Instant::now();
            let mb = greedy_matching_presorted(n, edges);
            (mb, std::time::Duration::ZERO, t_matching.elapsed())
        }
        None => {
            let t_enum = Instant::now();
            let edges = enumerate_positive_edges(n_real, threads, |u, v| inst.diversity(u, v));
            let edge_enum_time = t_enum.elapsed();
            let t_matching = Instant::now();
            let mb = greedy_matching_with_threads(n, &edges, threads);
            (mb, edge_enum_time, t_matching.elapsed())
        }
    };

    let bm = bm_vector(n, &mb);

    let t_lsap = Instant::now();
    let lsap_solution = compute_lsap(inst, opts, threads, &bm);
    let lsap_time = t_lsap.elapsed();

    finish(
        inst,
        opts,
        mb,
        lsap_solution,
        PhaseTimings {
            edge_enum: edge_enum_time,
            matching: matching_time,
            lsap: lsap_time,
            total: std::time::Duration::ZERO, // patched below
        },
        t_start,
        rng,
    )
}

/// [`solve_via_qap`] carrying the matching forward from the previous solve:
/// the open set is diffed against `warm`'s cached one, only the touched
/// pairs are invalidated, and the matching is repaired locally — `O(churn ×
/// degree)` instead of the full `O(|E|)` scan. The auxiliary LSAP is served
/// from `warm`'s input-keyed memo when the profit matrix is bit-identical
/// to the previous solve.
///
/// Every invariant violation (unsorted or out-of-range open set, a warm
/// state bound to a different catalog, an instance/open length mismatch)
/// falls back to the cold path, mirroring the edge-cache fingerprint guard,
/// so the output is byte-identical to [`solve_via_qap`] unconditionally.
pub(crate) fn solve_via_qap_warm(
    inst: &Instance,
    opts: PipelineOptions,
    cache: &DiversityEdgeCache,
    warm: &mut WarmState,
    open: &[u32],
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let n_real = inst.n_tasks();
    let sorted_in_range = open.windows(2).all(|w| w[0] < w[1])
        && open.last().is_none_or(|&g| (g as usize) < cache.n_tasks());
    if !sorted_in_range {
        // The open list cannot even index the cache; nothing reusable.
        return solve_via_qap(inst, opts, rng);
    }
    if !(warm.matches_cache(cache) && open.len() == n_real) {
        // The edge cache is usable but the warm state is not (stale catalog
        // binding); leave it untouched and take the filter path.
        return solve_via_qap_with_edges(inst, opts, &cache.filter_sorted(open), rng);
    }

    let t_start = Instant::now();
    let threads = hta_par::solver_threads(opts.threads);
    let nw = inst.n_workers();
    let xmax = inst.xmax();
    let n = n_real.max(nw * xmax);

    // ---- Step 2, incremental: diff + local repair + extraction -----------
    let t_matching = Instant::now();
    warm.update_open(cache, open);
    let mb = warm.extract_matching(cache, n);
    let matching_time = t_matching.elapsed();

    let bm = bm_vector(n, &mb);

    // ---- Steps 3-4 with the input-keyed memo ------------------------------
    let t_lsap = Instant::now();
    let key = lsap_memo_key(inst, opts, n, &bm);
    let lsap_solution = match warm.memo_get(key) {
        Some(sol) => sol,
        None => {
            let sol = compute_lsap(inst, opts, threads, &bm);
            warm.memo_put(key, &sol);
            sol
        }
    };
    let lsap_time = t_lsap.elapsed();

    finish(
        inst,
        opts,
        mb,
        lsap_solution,
        PhaseTimings {
            edge_enum: std::time::Duration::ZERO,
            matching: matching_time,
            lsap: lsap_time,
            total: std::time::Duration::ZERO, // patched below
        },
        t_start,
        rng,
    )
}

/// [`solve_via_qap_warm`] over a pool-scoped [`SparseEdgeCache`] — the
/// large-catalog path where no dense catalog-global edge list exists. The
/// open set must be a subset of the cache's pool members; the warm state is
/// epoch-synced to the cache (rebinding after pool drift costs integer work
/// only) and then the matching is diffed and repaired exactly like the
/// dense warm path.
///
/// The fallback ladder mirrors [`solve_via_qap_warm`]: an unsorted open set
/// or one not covered by the pool members solves cold; a warm state bound
/// to a foreign catalog (or an instance/open length mismatch) takes the
/// filtered-edges path and leaves `warm` untouched. Output is byte-
/// identical to [`solve_via_qap`] unconditionally.
pub(crate) fn solve_via_qap_sparse_warm(
    inst: &Instance,
    opts: PipelineOptions,
    cache: &SparseEdgeCache,
    warm: &mut SparseWarmState,
    open: &[u32],
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let n_real = inst.n_tasks();
    if !open.windows(2).all(|w| w[0] < w[1]) {
        return solve_via_qap(inst, opts, rng);
    }
    if cache.member_positions(open).is_none() {
        // The pool cache does not cover this open set; nothing reusable.
        return solve_via_qap(inst, opts, rng);
    }
    if !(warm.matches_cache(cache) && open.len() == n_real) {
        // The edge list is usable but the warm state is not (foreign
        // catalog binding); leave it untouched and take the filter path.
        return solve_via_qap_with_edges(inst, opts, &cache.filter_sorted(open), rng);
    }

    let t_start = Instant::now();
    let threads = hta_par::solver_threads(opts.threads);
    let nw = inst.n_workers();
    let xmax = inst.xmax();
    let n = n_real.max(nw * xmax);

    // ---- Step 2, incremental: epoch sync + diff + local repair -----------
    let t_matching = Instant::now();
    warm.sync(cache);
    warm.update_open(cache, open);
    let mb = warm.extract_matching(n);
    let matching_time = t_matching.elapsed();

    let bm = bm_vector(n, &mb);

    // ---- Steps 3-4 with the input-keyed memo ------------------------------
    let t_lsap = Instant::now();
    let key = lsap_memo_key(inst, opts, n, &bm);
    let lsap_solution = match warm.memo_get(key) {
        Some(sol) => sol,
        None => {
            let sol = compute_lsap(inst, opts, threads, &bm);
            warm.memo_put(key, &sol);
            sol
        }
    };
    let lsap_time = t_lsap.elapsed();

    finish(
        inst,
        opts,
        mb,
        lsap_solution,
        PhaseTimings {
            edge_enum: std::time::Duration::ZERO,
            matching: matching_time,
            lsap: lsap_time,
            total: std::time::Duration::ZERO, // patched below
        },
        t_start,
        rng,
    )
}

/// `b_M(t_k)`: weight of the matched edge incident to task `k` (0
/// otherwise, and 0 for virtual rows).
fn bm_vector(n: usize, mb: &Matching) -> Vec<f64> {
    let mut bm = vec![0.0f64; n];
    for e in mb.edges() {
        bm[e.u as usize] = e.weight;
        bm[e.v as usize] = e.weight;
    }
    bm
}

/// Steps 3-4: build the profit matrix in the requested representation and
/// run the configured LSAP strategy. A pure function of `(opts.lsap,
/// opts.representation, bm, instance weights/relevances, shape)` — the
/// thread count provably never changes the result — which is what makes the
/// warm path's input-keyed memo sound.
fn compute_lsap(
    inst: &Instance,
    opts: PipelineOptions,
    threads: usize,
    bm: &[f64],
) -> hta_matching::LsapSolution {
    let n = bm.len();
    let n_real = inst.n_tasks();
    let nw = inst.n_workers();
    let xmax = inst.xmax();
    // Column classes: class q < |W| is worker q's X_max-wide block; class
    // |W| collects the isolated (zero-profit) columns.
    // f(k, class q) = b_M(t_k)·(X_max−1)·α_q + β_q·rel(q, t_k)·(X_max−1).
    let xm1 = xmax as f64 - 1.0;
    let profit = |k: usize, class: usize| -> f64 {
        if class >= nw || k >= n_real {
            return 0.0;
        }
        bm[k] * xm1 * inst.alpha(class) + inst.beta(class) * inst.rel(class, k) * xm1
    };
    match opts.representation {
        CostRepresentation::Dense => {
            let dense = DenseMatrix::from_fn_parallel(n, threads, |k, l| {
                profit(k, worker_of_vertex(l, xmax, nw).unwrap_or(nw))
            });
            run_lsap(&dense, opts.lsap, threads)
        }
        CostRepresentation::Classed => {
            let classes: Vec<u32> = (0..n)
                .map(|l| worker_of_vertex(l, xmax, nw).unwrap_or(nw) as u32)
                .collect();
            let classed = ClassedCosts::new_parallel(n, nw + 1, classes, threads, profit);
            run_lsap(&classed, opts.lsap, threads)
        }
    }
}

/// Fingerprint of every input [`compute_lsap`] depends on: strategy and
/// representation, shape, `b_M`, per-worker weights, and the relevance
/// matrix. Two solves with equal keys have bit-identical profit matrices,
/// so replaying a memoized solution is byte-identical to re-solving.
/// Deliberately excludes the thread count (the result never depends on it).
fn lsap_memo_key(inst: &Instance, opts: PipelineOptions, n: usize, bm: &[f64]) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let n_real = inst.n_tasks();
    let nw = inst.n_workers();
    let mut h = mix(0x5EED_0CAB_005E_ED00, opts.lsap as u64);
    h = mix(h, opts.representation as u64);
    h = mix(h, n as u64);
    h = mix(h, nw as u64);
    h = mix(h, inst.xmax() as u64);
    h = mix(h, n_real as u64);
    // bm is zero beyond n_real (cache edges connect real tasks only).
    for &b in &bm[..n_real] {
        h = mix(h, b.to_bits());
    }
    for q in 0..nw {
        h = mix(h, inst.alpha(q).to_bits());
        h = mix(h, inst.beta(q).to_bits());
        for k in 0..n_real {
            h = mix(h, inst.rel(q, k).to_bits());
        }
    }
    h
}

#[allow(clippy::too_many_arguments)]
fn finish(
    inst: &Instance,
    opts: PipelineOptions,
    mb: Matching,
    lsap_solution: hta_matching::LsapSolution,
    mut timings: PhaseTimings,
    t_start: Instant,
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let n_real = inst.n_tasks();
    let nw = inst.n_workers();
    let xmax = inst.xmax();

    // ---- Step 5: random flip of matched pairs (Alg. 1 lines 12-16) -------
    let mut pi = lsap_solution.assignment;
    if opts.random_flip {
        for e in mb.edges() {
            if rng.random_bool(0.5) {
                pi.swap(e.u as usize, e.v as usize);
            }
        }
    }

    // ---- Step 6: Eq. 7 ----------------------------------------------------
    let assignment = assignment_from_permutation(&pi, n_real, xmax, nw);
    debug_assert!(assignment.validate(inst).is_ok());

    timings.total = t_start.elapsed();
    SolveOutcome {
        assignment,
        timings,
        lsap_value: lsap_solution.value,
    }
}

fn run_lsap(
    costs: &(impl CostMatrix + Sync),
    strategy: LsapStrategy,
    threads: usize,
) -> hta_matching::LsapSolution {
    match strategy {
        LsapStrategy::ExactJv => jv::solve(costs),
        LsapStrategy::ExactClassicHungarian => hungarian::solve(costs),
        LsapStrategy::Greedy => lsap_greedy::solve_with_threads(costs, threads),
        // Jacobi at every thread count (including 1) so the strategy's
        // output does not depend on the thread knob.
        LsapStrategy::Auction => auction::solve_jacobi(costs, threads),
        LsapStrategy::StructuredExact => structured::solve(costs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::paper_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn opts(lsap: LsapStrategy, representation: CostRepresentation) -> PipelineOptions {
        PipelineOptions {
            lsap,
            representation,
            random_flip: true,
            threads: 1,
        }
    }

    fn run(opts: PipelineOptions, seed: u64) -> SolveOutcome {
        let inst = paper_example();
        let mut rng = StdRng::seed_from_u64(seed);
        solve_via_qap(&inst, opts, &mut rng)
    }

    #[test]
    fn all_strategies_produce_feasible_assignments() {
        let inst = paper_example();
        for lsap in [
            LsapStrategy::ExactJv,
            LsapStrategy::Greedy,
            LsapStrategy::Auction,
            LsapStrategy::StructuredExact,
        ] {
            for repr in [CostRepresentation::Dense, CostRepresentation::Classed] {
                let out = run(opts(lsap, repr), 7);
                out.assignment.validate(&inst).unwrap();
                // 2 workers × X_max 3 = 6 of the 8 tasks assigned.
                assert_eq!(out.assignment.assigned_count(), 6);
                assert!(out.assignment.objective(&inst) > 0.0);
            }
        }
    }

    #[test]
    fn exact_lsap_value_independent_of_representation() {
        let a = run(
            opts(LsapStrategy::ExactJv, CostRepresentation::Dense).no_flip(),
            1,
        );
        let b = run(
            opts(LsapStrategy::ExactJv, CostRepresentation::Classed).no_flip(),
            1,
        );
        assert!((a.lsap_value - b.lsap_value).abs() < 1e-9);
        let c = run(
            opts(LsapStrategy::StructuredExact, CostRepresentation::Classed).no_flip(),
            1,
        );
        assert!((a.lsap_value - c.lsap_value).abs() < 1e-9);
    }

    impl PipelineOptions {
        fn no_flip(mut self) -> Self {
            self.random_flip = false;
            self
        }

        fn with_threads(mut self, threads: usize) -> Self {
            self.threads = threads;
            self
        }
    }

    #[test]
    fn greedy_lsap_within_half_of_exact() {
        let exact = run(
            opts(LsapStrategy::ExactJv, CostRepresentation::Dense).no_flip(),
            1,
        );
        let greedy = run(
            opts(LsapStrategy::Greedy, CostRepresentation::Dense).no_flip(),
            1,
        );
        assert!(greedy.lsap_value >= 0.5 * exact.lsap_value - 1e-9);
        assert!(greedy.lsap_value <= exact.lsap_value + 1e-9);
    }

    #[test]
    fn parallel_pipeline_is_byte_identical_to_sequential() {
        let inst = paper_example();
        for lsap in [
            LsapStrategy::ExactJv,
            LsapStrategy::Greedy,
            LsapStrategy::Auction,
        ] {
            for repr in [CostRepresentation::Dense, CostRepresentation::Classed] {
                let seq = {
                    let mut rng = StdRng::seed_from_u64(13);
                    solve_via_qap(&inst, opts(lsap, repr), &mut rng)
                };
                for threads in [2usize, 7] {
                    let mut rng = StdRng::seed_from_u64(13);
                    let par =
                        solve_via_qap(&inst, opts(lsap, repr).with_threads(threads), &mut rng);
                    assert_eq!(
                        par.assignment.sets(),
                        seq.assignment.sets(),
                        "{lsap:?}/{repr:?} threads={threads}"
                    );
                    assert_eq!(par.lsap_value.to_bits(), seq.lsap_value.to_bits());
                }
            }
        }
    }

    #[test]
    fn presorted_edges_match_fresh_enumeration() {
        use hta_matching::edge_order;
        let inst = paper_example();
        let mut edges = enumerate_positive_edges(inst.n_tasks(), 1, |u, v| inst.diversity(u, v));
        edges.sort_unstable_by(edge_order);
        let o = opts(LsapStrategy::Greedy, CostRepresentation::Classed);
        let fresh = solve_via_qap(&inst, o, &mut StdRng::seed_from_u64(21));
        let reused = solve_via_qap_with_edges(&inst, o, &edges, &mut StdRng::seed_from_u64(21));
        assert_eq!(reused.assignment.sets(), fresh.assignment.sets());
        assert_eq!(reused.lsap_value.to_bits(), fresh.lsap_value.to_bits());
        assert_eq!(reused.timings.edge_enum, std::time::Duration::ZERO);
    }

    #[test]
    fn scarce_instance_is_padded() {
        // 4 tasks, 2 workers, X_max = 3: only 4 assignments possible.
        use crate::instance::Instance;
        use crate::worker::Weights;
        let rel = vec![0.5; 8];
        let mut div = vec![0.7; 16];
        for k in 0..4 {
            div[k * 4 + k] = 0.0;
        }
        let inst = Instance::from_matrices(4, &[Weights::balanced(); 2], rel, div, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let out = solve_via_qap(
            &inst,
            opts(LsapStrategy::ExactJv, CostRepresentation::Dense),
            &mut rng,
        );
        out.assignment.validate(&inst).unwrap();
        assert!(out.assignment.assigned_count() <= 4);
        // With positive profits everywhere, all 4 real tasks get assigned.
        assert_eq!(out.assignment.assigned_count(), 4);
    }

    #[test]
    fn flip_changes_nothing_when_disabled() {
        let a = run(
            opts(LsapStrategy::ExactJv, CostRepresentation::Dense).no_flip(),
            11,
        );
        let b = run(
            opts(LsapStrategy::ExactJv, CostRepresentation::Dense).no_flip(),
            99,
        );
        assert_eq!(a.assignment.sets(), b.assignment.sets());
    }
}
