//! The shared QAP pipeline behind HTA-APP and HTA-GRE (Algorithms 1 and 2).
//!
//! Both algorithms are identical except for how the auxiliary LSAP is
//! solved (Algorithm 1 line 11 vs Algorithm 2 line 11):
//!
//! 1. map the instance to MaxQAP matrices A, B, C (implicitly — only the
//!    clique structure, `b_M`, and `degA` are needed);
//! 2. compute a greedy maximum-weight matching `M_B` on the diversity graph;
//! 3. build the LSAP profits `f_{k,l} = b_M(t_k)·degA_l + c_{k,l}`;
//! 4. solve the LSAP (exactly, greedily, or with an alternative solver);
//! 5. randomly flip the images of each matched pair with probability ½
//!    (lines 12–16 — required by the expectation argument in Theorem 4);
//! 6. read the assignment off the permutation (Eq. 7).
//!
//! Instances with fewer than `|W|·X_max` tasks are padded with *virtual*
//! tasks (zero diversity, zero relevance) so the clique mapping stays
//! well-formed; virtual rows are dropped when building the assignment.

use std::time::Instant;

use rand::{Rng, RngExt};

use hta_matching::lsap::{auction, greedy as lsap_greedy, hungarian, jv, structured};
use hta_matching::{greedy_matching, ClassedCosts, CostMatrix, DenseMatrix, WeightedEdge};

use crate::instance::Instance;
use crate::qap::{assignment_from_permutation, worker_of_vertex};
use crate::solver::{PhaseTimings, SolveOutcome};

/// Which LSAP solver to run in step 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsapStrategy {
    /// Exact Jonker–Volgenant (the Hungarian-family solver of HTA-APP).
    ExactJv,
    /// Exact classic Hungarian (Kuhn–Munkres) without JV's reduction
    /// phases — closest to the Carpaneto-era code the paper timed.
    ExactClassicHungarian,
    /// ½-approximate greedy matching (HTA-GRE).
    Greedy,
    /// Bertsekas auction with ε-scaling (ablation).
    Auction,
    /// Exact transportation solver over column classes (ablation).
    StructuredExact,
}

/// How the LSAP profit matrix is materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostRepresentation {
    /// Dense `n × n` (`O(n²)` memory) — faithful to the paper's setup.
    Dense,
    /// Column-class form (`O(n·|W|)` memory) — our structured extension.
    Classed,
}

/// Tuning knobs shared by HTA-APP and HTA-GRE.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    pub lsap: LsapStrategy,
    pub representation: CostRepresentation,
    /// Apply the random ½-flip of matched pairs (disable only for the
    /// ablation study; the approximation proof needs it).
    pub random_flip: bool,
}

pub(crate) fn solve_via_qap(
    inst: &Instance,
    opts: PipelineOptions,
    rng: &mut dyn Rng,
) -> SolveOutcome {
    let t_start = Instant::now();
    let n_real = inst.n_tasks();
    let nw = inst.n_workers();
    let xmax = inst.xmax();
    // Pad so every clique has X_max vertices.
    let n = n_real.max(nw * xmax);

    // ---- Step 2: greedy max-weight matching M_B on diversity -------------
    let t_matching = Instant::now();
    let mut edges = Vec::with_capacity(n_real.saturating_sub(1) * n_real / 2);
    for u in 0..n_real {
        for v in (u + 1)..n_real {
            let w = inst.diversity(u, v);
            if w > 0.0 {
                edges.push(WeightedEdge::new(u as u32, v as u32, w));
            }
        }
    }
    let mb = greedy_matching(n, &edges);
    let matching_time = t_matching.elapsed();

    // b_M(t_k): weight of the matched edge incident to task k (0 otherwise,
    // and 0 for virtual rows).
    let mut bm = vec![0.0f64; n];
    for e in mb.edges() {
        bm[e.u as usize] = e.weight;
        bm[e.v as usize] = e.weight;
    }

    // ---- Steps 3-4: auxiliary LSAP ---------------------------------------
    // Column classes: class q < |W| is worker q's X_max-wide block; class
    // |W| collects the isolated (zero-profit) columns.
    // f(k, class q) = b_M(t_k)·(X_max−1)·α_q + β_q·rel(q, t_k)·(X_max−1).
    let xm1 = xmax as f64 - 1.0;
    let profit = |k: usize, class: usize| -> f64 {
        if class >= nw || k >= n_real {
            return 0.0;
        }
        bm[k] * xm1 * inst.alpha(class) + inst.beta(class) * inst.rel(class, k) * xm1
    };

    let t_lsap = Instant::now();
    let lsap_solution = match opts.representation {
        CostRepresentation::Dense => {
            let dense = DenseMatrix::from_fn(n, |k, l| {
                profit(k, worker_of_vertex(l, xmax, nw).unwrap_or(nw))
            });
            run_lsap(&dense, opts.lsap)
        }
        CostRepresentation::Classed => {
            let classes: Vec<u32> = (0..n)
                .map(|l| worker_of_vertex(l, xmax, nw).unwrap_or(nw) as u32)
                .collect();
            let classed = ClassedCosts::new(n, nw + 1, classes, profit);
            run_lsap(&classed, opts.lsap)
        }
    };
    let lsap_time = t_lsap.elapsed();

    // ---- Step 5: random flip of matched pairs (Alg. 1 lines 12-16) -------
    let mut pi = lsap_solution.assignment;
    if opts.random_flip {
        for e in mb.edges() {
            if rng.random_bool(0.5) {
                pi.swap(e.u as usize, e.v as usize);
            }
        }
    }

    // ---- Step 6: Eq. 7 ----------------------------------------------------
    let assignment = assignment_from_permutation(&pi, n_real, xmax, nw);
    debug_assert!(assignment.validate(inst).is_ok());

    SolveOutcome {
        assignment,
        timings: PhaseTimings {
            matching: matching_time,
            lsap: lsap_time,
            total: t_start.elapsed(),
        },
        lsap_value: lsap_solution.value,
    }
}

fn run_lsap(costs: &impl CostMatrix, strategy: LsapStrategy) -> hta_matching::LsapSolution {
    match strategy {
        LsapStrategy::ExactJv => jv::solve(costs),
        LsapStrategy::ExactClassicHungarian => hungarian::solve(costs),
        LsapStrategy::Greedy => lsap_greedy::solve(costs),
        LsapStrategy::Auction => auction::solve(costs),
        LsapStrategy::StructuredExact => structured::solve(costs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::paper_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(opts: PipelineOptions, seed: u64) -> SolveOutcome {
        let inst = paper_example();
        let mut rng = StdRng::seed_from_u64(seed);
        solve_via_qap(&inst, opts, &mut rng)
    }

    #[test]
    fn all_strategies_produce_feasible_assignments() {
        let inst = paper_example();
        for lsap in [
            LsapStrategy::ExactJv,
            LsapStrategy::Greedy,
            LsapStrategy::Auction,
            LsapStrategy::StructuredExact,
        ] {
            for repr in [CostRepresentation::Dense, CostRepresentation::Classed] {
                let out = run(
                    PipelineOptions {
                        lsap,
                        representation: repr,
                        random_flip: true,
                    },
                    7,
                );
                out.assignment.validate(&inst).unwrap();
                // 2 workers × X_max 3 = 6 of the 8 tasks assigned.
                assert_eq!(out.assignment.assigned_count(), 6);
                assert!(out.assignment.objective(&inst) > 0.0);
            }
        }
    }

    #[test]
    fn exact_lsap_value_independent_of_representation() {
        let a = run(
            PipelineOptions {
                lsap: LsapStrategy::ExactJv,
                representation: CostRepresentation::Dense,
                random_flip: false,
            },
            1,
        );
        let b = run(
            PipelineOptions {
                lsap: LsapStrategy::ExactJv,
                representation: CostRepresentation::Classed,
                random_flip: false,
            },
            1,
        );
        assert!((a.lsap_value - b.lsap_value).abs() < 1e-9);
        let c = run(
            PipelineOptions {
                lsap: LsapStrategy::StructuredExact,
                representation: CostRepresentation::Classed,
                random_flip: false,
            },
            1,
        );
        assert!((a.lsap_value - c.lsap_value).abs() < 1e-9);
    }

    #[test]
    fn greedy_lsap_within_half_of_exact() {
        let exact = run(
            PipelineOptions {
                lsap: LsapStrategy::ExactJv,
                representation: CostRepresentation::Dense,
                random_flip: false,
            },
            1,
        );
        let greedy = run(
            PipelineOptions {
                lsap: LsapStrategy::Greedy,
                representation: CostRepresentation::Dense,
                random_flip: false,
            },
            1,
        );
        assert!(greedy.lsap_value >= 0.5 * exact.lsap_value - 1e-9);
        assert!(greedy.lsap_value <= exact.lsap_value + 1e-9);
    }

    #[test]
    fn scarce_instance_is_padded() {
        // 4 tasks, 2 workers, X_max = 3: only 4 assignments possible.
        use crate::instance::Instance;
        use crate::worker::Weights;
        let rel = vec![0.5; 8];
        let mut div = vec![0.7; 16];
        for k in 0..4 {
            div[k * 4 + k] = 0.0;
        }
        let inst = Instance::from_matrices(4, &[Weights::balanced(); 2], rel, div, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let out = solve_via_qap(
            &inst,
            PipelineOptions {
                lsap: LsapStrategy::ExactJv,
                representation: CostRepresentation::Dense,
                random_flip: true,
            },
            &mut rng,
        );
        out.assignment.validate(&inst).unwrap();
        assert!(out.assignment.assigned_count() <= 4);
        // With positive profits everywhere, all 4 real tasks get assigned.
        assert_eq!(out.assignment.assigned_count(), 4);
    }

    #[test]
    fn flip_changes_nothing_when_disabled() {
        let a = run(
            PipelineOptions {
                lsap: LsapStrategy::ExactJv,
                representation: CostRepresentation::Dense,
                random_flip: false,
            },
            11,
        );
        let b = run(
            PipelineOptions {
                lsap: LsapStrategy::ExactJv,
                representation: CostRepresentation::Dense,
                random_flip: false,
            },
            99,
        );
        assert_eq!(a.assignment.sets(), b.assignment.sets());
    }
}
