//! Warm-start state carried between cohort solves.
//!
//! In the iterative setting the solver is called again and again over open
//! subsets of one immutable catalog, and between calls only a handful of
//! tasks complete, expire, or arrive. The [`DiversityEdgeCache`] already
//! amortizes edge enumeration across those calls; [`WarmState`] goes one
//! step further and carries the *matching* forward too: an
//! [`IncrementalMatching`] over the catalog-global edge list is diffed
//! against each new open set and repaired locally, so the matching phase —
//! which dominates every cold-solve row of BENCH_solvers.json — costs
//! `O(churn × degree)` instead of `O(|E|)`.
//!
//! The state also memoizes the last auxiliary-LSAP solution keyed by a
//! fingerprint of the *inputs* that determine it (profit-matrix contents,
//! shape, and strategy). Every LSAP strategy in the pipeline is a pure,
//! thread-invariant function of the profit matrix, so replaying the stored
//! solution on a key hit is byte-identical to re-solving at any thread
//! count. A true price-retaining auction restart would be trajectory-
//! dependent (prices encode the previous instance) and could not keep the
//! byte-identity contract; the input-keyed memo is the identity-safe
//! version, and it fires exactly when a restart would be free anyway — when
//! the instance did not change.
//!
//! # Invariants
//!
//! A `WarmState` is bound to the [`DiversityEdgeCache`] it was created from
//! (same catalog fingerprint, same edge count). All entry points that
//! consume one guard that binding — [`matches_cache`](WarmState::matches_cache)
//! mirrors the edge cache's own fingerprint guard — and fall back to the
//! cold path on any violation rather than trusting stale state.

use hta_matching::incremental::{IncrementalMatching, UpdateStats};
use hta_matching::{LsapSolution, Matching};

use crate::edges::DiversityEdgeCache;

/// Matching and LSAP state carried from one cohort solve to the next. See
/// the [module docs](self).
#[derive(Debug, Clone)]
pub struct WarmState {
    /// Fingerprint of the catalog (and so the edge cache) this state is
    /// bound to.
    fingerprint: u64,
    /// The greedy matching over the open subset, in catalog-global vertex
    /// space, maintained incrementally.
    inc: IncrementalMatching,
    /// Input-keyed memo of the last LSAP solution.
    memo: Option<(u64, LsapSolution)>,
    /// Stats of the most recent open-set update (observability/tests).
    last_stats: UpdateStats,
}

impl WarmState {
    /// Fresh warm state bound to `cache`, with an empty open set. The first
    /// [`update_open`](Self::update_open) installs the initial matching via
    /// a linear rebuild; subsequent calls repair incrementally.
    pub fn new(cache: &DiversityEdgeCache) -> Self {
        Self {
            fingerprint: cache.fingerprint(),
            inc: IncrementalMatching::new(cache.n_tasks(), cache.edges()),
            memo: None,
            last_stats: UpdateStats::default(),
        }
    }

    /// Rebuild a warm state from its serialized essence: the cache it was
    /// bound to plus the open set at snapshot time. The matching itself is
    /// *not* serialized — it is a deterministic function of (edge list,
    /// open set), so rebuilding it here is both cheaper than validating an
    /// untrusted serialized matching and guaranteed byte-identical.
    pub fn restore(cache: &DiversityEdgeCache, open: &[u32]) -> Self {
        let mut state = Self::new(cache);
        state.update_open(cache, open);
        state
    }

    /// Fingerprint of the catalog this state is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The open set the current matching covers (strictly increasing
    /// catalog indices) — this plus the fingerprint is the state's full
    /// serialized form.
    pub fn open_list(&self) -> &[u32] {
        self.inc.open_list()
    }

    /// Whether this state was built from (an identical twin of) `cache`.
    /// Callers must check this before handing the pair to a solver; on a
    /// mismatch the warm path falls back to the cold one, exactly like the
    /// edge cache's own `valid_for` guard.
    pub fn matches_cache(&self, cache: &DiversityEdgeCache) -> bool {
        self.fingerprint == cache.fingerprint()
            && self.inc.n_vertices() == cache.n_tasks()
            && self.inc.edges_len() == cache.edges().len()
    }

    /// Install a new open set (strictly increasing catalog indices),
    /// repairing or rebuilding the matching as the delta size dictates.
    pub fn update_open(&mut self, cache: &DiversityEdgeCache, open: &[u32]) -> UpdateStats {
        debug_assert!(self.matches_cache(cache));
        let stats = self.inc.update_open(cache.edges(), open);
        self.last_stats = stats;
        stats
    }

    /// Materialize the current matching in local (open-subset) ids over
    /// `n_out` padded vertices — byte-identical to running the presorted
    /// greedy over [`DiversityEdgeCache::filter_sorted`] of the open set.
    pub fn extract_matching(&self, cache: &DiversityEdgeCache, n_out: usize) -> Matching {
        self.inc.extract(cache.edges(), n_out)
    }

    /// Stats of the most recent [`update_open`](Self::update_open).
    pub fn last_stats(&self) -> UpdateStats {
        self.last_stats
    }

    /// Look up the memoized LSAP solution for `key`.
    pub(crate) fn memo_get(&self, key: u64) -> Option<LsapSolution> {
        match &self.memo {
            Some((k, sol)) if *k == key => Some(sol.clone()),
            _ => None,
        }
    }

    /// Store the LSAP solution computed for `key`.
    pub(crate) fn memo_put(&mut self, key: u64, sol: &LsapSolution) {
        self.memo = Some((key, sol.clone()));
    }

    /// Whether the memo currently holds a solution (tests/observability).
    pub fn has_memo(&self) -> bool {
        self.memo.is_some()
    }
}
