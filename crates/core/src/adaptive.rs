//! Adaptive estimation of `(α_w, β_w)` from observed task completions
//! (Section III).
//!
//! As a worker completes tasks, the platform records the *normalized
//! marginal gains* of each completion: how much diversity (resp. relevance)
//! the chosen task added, divided by the maximum gain available among the
//! remaining assigned tasks. The per-iteration weights are the averages of
//! the collected gains, renormalized onto the simplex (`α + β = 1`).

use crate::instance::Instance;
use crate::motivation::normalized_gains;
use crate::worker::Weights;

/// Accumulates normalized marginal gains for one worker and produces the
/// next iteration's `(α, β)`.
#[derive(Debug, Clone)]
pub struct WeightEstimator {
    prior: Weights,
    div_gains: Vec<f64>,
    rel_gains: Vec<f64>,
}

impl WeightEstimator {
    /// A fresh estimator; `prior` is returned until any gain is observed
    /// (the cold-start weights).
    pub fn new(prior: Weights) -> Self {
        Self {
            prior,
            div_gains: Vec::new(),
            rel_gains: Vec::new(),
        }
    }

    /// Record raw normalized gains (each already in `[0, 1]`, `None` when
    /// the corresponding maximum gain was zero — no signal).
    ///
    /// # Panics
    /// Panics (debug builds) if a provided gain is outside `[0, 1]`.
    pub fn observe_gains(&mut self, div: Option<f64>, rel: Option<f64>) {
        if let Some(g) = div {
            debug_assert!((0.0..=1.0 + 1e-9).contains(&g), "gain {g} out of [0,1]");
            self.div_gains.push(g.clamp(0.0, 1.0));
        }
        if let Some(g) = rel {
            debug_assert!((0.0..=1.0 + 1e-9).contains(&g), "gain {g} out of [0,1]");
            self.rel_gains.push(g.clamp(0.0, 1.0));
        }
    }

    /// Observe worker `q` completing task `t` on `inst`, having already
    /// completed `completed` (in order) out of the assigned candidate set
    /// `remaining` (`t ∈ remaining`). Computes and records the normalized
    /// gains of Section III.
    pub fn observe_completion(
        &mut self,
        inst: &Instance,
        q: usize,
        completed: &[usize],
        remaining: &[usize],
        t: usize,
    ) {
        let (d, r) = normalized_gains(inst, q, completed, remaining, t);
        self.observe_gains(d, r);
    }

    /// Number of recorded gain samples `(diversity, relevance)`.
    pub fn sample_counts(&self) -> (usize, usize) {
        (self.div_gains.len(), self.rel_gains.len())
    }

    /// The current estimate: averages of the collected gains, renormalized
    /// so `α + β = 1`. Falls back to the prior with no samples at all; a
    /// single missing component falls back to that component of the prior
    /// before renormalizing.
    pub fn estimate(&self) -> Weights {
        let mean = |v: &[f64]| -> Option<f64> {
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        match (mean(&self.div_gains), mean(&self.rel_gains)) {
            (None, None) => self.prior,
            (d, r) => Weights::normalized(
                d.unwrap_or(self.prior.alpha()),
                r.unwrap_or(self.prior.beta()),
            ),
        }
    }

    /// Drop all samples, keeping the prior (e.g. at a session boundary).
    pub fn reset(&mut self) {
        self.div_gains.clear();
        self.rel_gains.clear();
    }

    /// The cold-start prior.
    pub(crate) fn prior(&self) -> Weights {
        self.prior
    }

    /// The raw recorded gain samples `(diversity, relevance)`, in
    /// observation order.
    pub(crate) fn gain_samples(&self) -> (&[f64], &[f64]) {
        (&self.div_gains, &self.rel_gains)
    }

    /// Rebuild an estimator from its parts (snapshot decoding).
    pub(crate) fn from_parts(prior: Weights, div_gains: Vec<f64>, rel_gains: Vec<f64>) -> Self {
        Self {
            prior,
            div_gains,
            rel_gains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_prior_without_observations() {
        let e = WeightEstimator::new(Weights::from_alpha(0.7));
        assert_eq!(e.estimate().alpha(), 0.7);
    }

    #[test]
    fn averages_and_renormalizes() {
        let mut e = WeightEstimator::new(Weights::balanced());
        e.observe_gains(Some(0.8), Some(0.2));
        e.observe_gains(Some(0.4), Some(0.2));
        // means: div 0.6, rel 0.2 → α = 0.6/0.8 = 0.75.
        let w = e.estimate();
        assert!((w.alpha() - 0.75).abs() < 1e-12);
        assert!((w.alpha() + w.beta() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_component_uses_prior_side() {
        let mut e = WeightEstimator::new(Weights::from_alpha(0.5));
        e.observe_gains(None, Some(1.0));
        // div falls back to prior α=0.5 → (0.5, 1.0) → α = 1/3.
        let w = e.estimate();
        assert!((w.alpha() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_gains_yield_balanced() {
        let mut e = WeightEstimator::new(Weights::from_alpha(0.9));
        e.observe_gains(Some(0.0), Some(0.0));
        let w = e.estimate();
        assert_eq!(w.alpha(), 0.5);
    }

    #[test]
    fn reset_restores_prior() {
        let mut e = WeightEstimator::new(Weights::from_alpha(0.25));
        e.observe_gains(Some(1.0), Some(0.0));
        assert_eq!(e.estimate().alpha(), 1.0);
        e.reset();
        assert_eq!(e.estimate().alpha(), 0.25);
        assert_eq!(e.sample_counts(), (0, 0));
    }

    #[test]
    fn observe_completion_integrates_with_instance() {
        use crate::worker::Weights as W;
        let rel = vec![0.9, 0.5, 0.1];
        #[rustfmt::skip]
        let div = vec![
            0.0, 0.4, 1.0,
            0.4, 0.0, 0.6,
            1.0, 0.6, 0.0,
        ];
        let inst = Instance::from_matrices(3, &[W::balanced()], rel, div, 3).unwrap();
        let mut e = WeightEstimator::new(W::balanced());
        // First completion (t0): no diversity signal, rel gain 0.9/0.9 = 1.
        e.observe_completion(&inst, 0, &[], &[0, 1, 2], 0);
        assert_eq!(e.sample_counts(), (0, 1));
        // Second completion (t1 out of {1,2}): div gain 0.4/1.0, rel 0.5/0.5.
        e.observe_completion(&inst, 0, &[0], &[1, 2], 1);
        assert_eq!(e.sample_counts(), (1, 2));
        let w = e.estimate();
        // means: div 0.4, rel 1.0 → α = 0.4/1.4.
        assert!((w.alpha() - 0.4 / 1.4).abs() < 1e-12);
    }
}
