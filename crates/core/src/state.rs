//! Binary state serialization for checkpoint/restore.
//!
//! The snapshot subsystem (`hta-snapshot`) stores opaque, checksummed byte
//! sections; this module defines *what the bytes mean*. [`StateSerialize`]
//! is a minimal, deterministic, little-endian encoding: fixed-width
//! integers, `f64` as IEEE-754 bit patterns (bit-exact round trips, the
//! whole point of resumable runs), and length-prefixed sequences. There is
//! no self-description — readers and writers must agree on the layout, and
//! the snapshot container's format version is what keeps them honest.
//!
//! Decoding is total: every failure is a [`StateDecodeError`], never a
//! panic, and never a partially-constructed value escaping to the caller.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;

use crate::adaptive::WeightEstimator;
use crate::bitvec::KeywordVec;
use crate::keywords::{KeywordId, KeywordSpace};
use crate::task::{GroupId, Task, TaskId, TaskPool};
use crate::worker::{Weights, WorkerId};

/// Why a state blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateDecodeError {
    /// The reader ran out of bytes: `needed` more were required but only
    /// `remaining` were left.
    Truncated {
        /// Bytes the current field required.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The bytes decoded to a structurally invalid value.
    Invalid(String),
    /// Decoding finished with unconsumed bytes — the blob does not match
    /// the expected layout.
    TrailingBytes(usize),
}

impl fmt::Display for StateDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, remaining } => write!(
                f,
                "state blob truncated: needed {needed} more bytes, {remaining} remaining"
            ),
            Self::Invalid(msg) => write!(f, "invalid state: {msg}"),
            Self::TrailingBytes(n) => write!(f, "state blob has {n} trailing bytes"),
        }
    }
}

impl std::error::Error for StateDecodeError {}

/// A bounds-checked cursor over a state blob.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StateDecodeError> {
        if n > self.remaining() {
            return Err(StateDecodeError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Decode the next value of type `T`.
    pub fn read<T: StateSerialize>(&mut self) -> Result<T, StateDecodeError> {
        T::read_state(self)
    }

    /// Fail unless every byte was consumed.
    pub fn expect_end(&self) -> Result<(), StateDecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateDecodeError::TrailingBytes(self.remaining()))
        }
    }
}

/// Deterministic binary encoding of a piece of run state.
pub trait StateSerialize: Sized {
    /// Append the encoding of `self` to `out`.
    fn write_state(&self, out: &mut Vec<u8>);

    /// Decode a value from the reader. Must consume exactly the bytes
    /// `write_state` produced and must not leave observable side effects on
    /// failure.
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError>;
}

/// Encode `value` into a fresh byte vector.
pub fn encode<T: StateSerialize>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.write_state(&mut out);
    out
}

/// Decode a value from `bytes`, requiring the blob to be fully consumed.
pub fn decode<T: StateSerialize>(bytes: &[u8]) -> Result<T, StateDecodeError> {
    let mut r = StateReader::new(bytes);
    let value = T::read_state(&mut r)?;
    r.expect_end()?;
    Ok(value)
}

macro_rules! int_impl {
    ($ty:ty) => {
        impl StateSerialize for $ty {
            fn write_state(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    };
}

int_impl!(u8);
int_impl!(u16);
int_impl!(u32);
int_impl!(u64);

impl StateSerialize for usize {
    fn write_state(&self, out: &mut Vec<u8>) {
        (*self as u64).write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let v = u64::read_state(r)?;
        usize::try_from(v)
            .map_err(|_| StateDecodeError::Invalid(format!("length {v} overflows usize")))
    }
}

impl StateSerialize for f64 {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.to_bits().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        Ok(f64::from_bits(u64::read_state(r)?))
    }
}

impl StateSerialize for bool {
    fn write_state(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        match u8::read_state(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StateDecodeError::Invalid(format!("bool byte {b:#04x}"))),
        }
    }
}

impl StateSerialize for String {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.len().write_state(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let len = usize::read_state(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StateDecodeError::Invalid(format!("string not UTF-8: {e}")))
    }
}

impl<T: StateSerialize> StateSerialize for Vec<T> {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.len().write_state(out);
        for item in self {
            item.write_state(out);
        }
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let len = usize::read_state(r)?;
        // Every element consumes at least one byte, so a corrupt length
        // larger than the remaining buffer cannot force a huge allocation.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::read_state(r)?);
        }
        Ok(out)
    }
}

impl<T: StateSerialize> StateSerialize for Option<T> {
    fn write_state(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write_state(out);
            }
        }
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        match u8::read_state(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::read_state(r)?)),
            b => Err(StateDecodeError::Invalid(format!("option tag {b:#04x}"))),
        }
    }
}

macro_rules! id_impl {
    ($ty:ident) => {
        impl StateSerialize for $ty {
            fn write_state(&self, out: &mut Vec<u8>) {
                self.0.write_state(out);
            }
            fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
                Ok($ty(u32::read_state(r)?))
            }
        }
    };
}

id_impl!(TaskId);
id_impl!(GroupId);
id_impl!(WorkerId);
id_impl!(KeywordId);

impl StateSerialize for KeywordVec {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.nbits().write_state(out);
        self.blocks().to_vec().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let nbits = usize::read_state(r)?;
        let blocks = Vec::<u64>::read_state(r)?;
        KeywordVec::from_blocks(nbits, blocks).ok_or_else(|| {
            StateDecodeError::Invalid(format!(
                "keyword vector blocks inconsistent with nbits={nbits}"
            ))
        })
    }
}

impl StateSerialize for KeywordSpace {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.len().write_state(out);
        for i in 0..self.len() {
            self.name(KeywordId(i as u32)).to_owned().write_state(out);
        }
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let len = usize::read_state(r)?;
        let mut space = KeywordSpace::new();
        for _ in 0..len {
            let name = String::read_state(r)?;
            if space.get(&name).is_some() {
                return Err(StateDecodeError::Invalid(format!(
                    "duplicate keyword {name:?} in keyword space"
                )));
            }
            space.intern(&name);
        }
        Ok(space)
    }
}

impl StateSerialize for Weights {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.alpha().write_state(out);
        self.beta().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let alpha = f64::read_state(r)?;
        let beta = f64::read_state(r)?;
        // `Weights::raw` panics out of range; reject first. `contains` is
        // false for NaN, so corrupt bit patterns are caught here too.
        if !(0.0..=1.0).contains(&alpha) || !(0.0..=1.0).contains(&beta) {
            return Err(StateDecodeError::Invalid(format!(
                "weights ({alpha}, {beta}) outside [0, 1]"
            )));
        }
        Ok(Weights::raw(alpha, beta))
    }
}

impl StateSerialize for WeightEstimator {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.prior().write_state(out);
        let (div, rel) = self.gain_samples();
        div.to_vec().write_state(out);
        rel.to_vec().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let prior = Weights::read_state(r)?;
        let div = Vec::<f64>::read_state(r)?;
        let rel = Vec::<f64>::read_state(r)?;
        for &g in div.iter().chain(&rel) {
            if !(0.0..=1.0).contains(&g) {
                return Err(StateDecodeError::Invalid(format!(
                    "gain sample {g} outside [0, 1]"
                )));
            }
        }
        Ok(WeightEstimator::from_parts(prior, div, rel))
    }
}

impl StateSerialize for Task {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.id.write_state(out);
        self.group.write_state(out);
        self.keywords.write_state(out);
        self.reward_cents.write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let id = TaskId::read_state(r)?;
        let group = GroupId::read_state(r)?;
        let keywords = KeywordVec::read_state(r)?;
        let reward_cents = u32::read_state(r)?;
        Ok(Task::new(id, group, keywords).with_reward_cents(reward_cents))
    }
}

impl StateSerialize for TaskPool {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.tasks().to_vec().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let tasks = Vec::<Task>::read_state(r)?;
        let mut pool = TaskPool::new();
        for (i, task) in tasks.into_iter().enumerate() {
            if task.id != TaskId(i as u32) {
                return Err(StateDecodeError::Invalid(format!(
                    "task pool ids not dense: position {i} holds id {}",
                    task.id.0
                )));
            }
            pool.push_task(task);
        }
        Ok(pool)
    }
}

impl StateSerialize for StdRng {
    fn write_state(&self, out: &mut Vec<u8>) {
        for word in self.state() {
            word.write_state(out);
        }
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = u64::read_state(r)?;
        }
        Ok(StdRng::from_state(s))
    }
}

/// `HashMap<String, T>` encoded as sorted `(key, value)` pairs so the byte
/// stream is independent of hash iteration order.
impl<T: StateSerialize> StateSerialize for HashMap<String, T> {
    fn write_state(&self, out: &mut Vec<u8>) {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        keys.len().write_state(out);
        for key in keys {
            key.write_state(out);
            self[key].write_state(out);
        }
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let len = usize::read_state(r)?;
        let mut map = HashMap::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            let key = String::read_state(r)?;
            let value = T::read_state(r)?;
            if map.insert(key, value).is_some() {
                return Err(StateDecodeError::Invalid("duplicate map key".into()));
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn round_trip<T: StateSerialize + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = encode(value);
        let back: T = decode(&bytes).expect("decode");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(&0u8);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&-0.0f64);
        round_trip(&f64::NAN.to_bits()); // NaN itself is not PartialEq
        round_trip(&true);
        round_trip(&String::from("relevance & diversity"));
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Some(7u64));
        round_trip(&None::<u64>);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = decode::<Vec<u64>>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StateDecodeError::Truncated { .. }),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&3u32);
        bytes.push(0);
        assert_eq!(
            decode::<u32>(&bytes).unwrap_err(),
            StateDecodeError::TrailingBytes(1)
        );
    }

    #[test]
    fn huge_length_prefix_does_not_allocate() {
        let bytes = encode(&(u64::MAX / 2));
        // Decoding as a Vec sees an absurd length but only `0` remaining
        // bytes, so it must fail fast without a giant reservation.
        let err = decode::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, StateDecodeError::Truncated { .. }));
    }

    #[test]
    fn keyword_vec_round_trip_and_validation() {
        let v = KeywordVec::from_indices(130, &[0, 63, 64, 129]);
        round_trip(&v);

        // Stray bits above nbits must be rejected.
        let mut bytes = Vec::new();
        70usize.write_state(&mut bytes);
        vec![0u64, u64::MAX].write_state(&mut bytes);
        let err = decode::<KeywordVec>(&bytes).unwrap_err();
        assert!(matches!(err, StateDecodeError::Invalid(_)), "{err}");
    }

    #[test]
    fn keyword_space_round_trip_preserves_ids() {
        let mut space = KeywordSpace::new();
        for kw in ["audio", "english", "news", "sports"] {
            space.intern(kw);
        }
        let bytes = encode(&space);
        let back: KeywordSpace = decode(&bytes).unwrap();
        assert_eq!(back.len(), space.len());
        for i in 0..space.len() {
            let id = KeywordId(i as u32);
            assert_eq!(back.name(id), space.name(id));
            assert_eq!(back.get(space.name(id)), Some(id));
        }
    }

    #[test]
    fn weights_and_estimator_round_trip() {
        let w = Weights::raw(0.6, 0.3); // non-simplex raw weights survive
        let bytes = encode(&w);
        let back: Weights = decode(&bytes).unwrap();
        assert_eq!(back.alpha().to_bits(), w.alpha().to_bits());
        assert_eq!(back.beta().to_bits(), w.beta().to_bits());

        let mut e = WeightEstimator::new(Weights::from_alpha(0.7));
        e.observe_gains(Some(0.8), Some(0.2));
        e.observe_gains(None, Some(0.5));
        let back: WeightEstimator = decode(&encode(&e)).unwrap();
        assert_eq!(back.sample_counts(), e.sample_counts());
        assert_eq!(
            back.estimate().alpha().to_bits(),
            e.estimate().alpha().to_bits()
        );
    }

    #[test]
    fn corrupt_weights_are_rejected_not_panicking() {
        let mut bytes = Vec::new();
        2.5f64.write_state(&mut bytes);
        0.5f64.write_state(&mut bytes);
        assert!(matches!(
            decode::<Weights>(&bytes).unwrap_err(),
            StateDecodeError::Invalid(_)
        ));
        let mut bytes = Vec::new();
        f64::NAN.write_state(&mut bytes);
        0.5f64.write_state(&mut bytes);
        assert!(matches!(
            decode::<Weights>(&bytes).unwrap_err(),
            StateDecodeError::Invalid(_)
        ));
    }

    #[test]
    fn task_pool_round_trip() {
        let mut pool = TaskPool::new();
        for i in 0..5usize {
            pool.push(
                GroupId((i % 2) as u32),
                KeywordVec::from_indices(16, &[i, i + 3]),
            );
        }
        let back: TaskPool = decode(&encode(&pool)).unwrap();
        assert_eq!(back.len(), pool.len());
        for (a, b) in back.tasks().iter().zip(pool.tasks()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.group, b.group);
            assert_eq!(a.keywords, b.keywords);
            assert_eq!(a.reward_cents, b.reward_cents);
        }
    }

    #[test]
    fn rng_round_trip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(0x5E59);
        for _ in 0..37 {
            rng.next_u64();
        }
        let mut back: StdRng = decode(&encode(&rng)).unwrap();
        for _ in 0..50 {
            assert_eq!(back.next_u64(), rng.next_u64());
        }
    }
}
