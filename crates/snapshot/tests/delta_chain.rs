//! Property tests for the snapshot delta format.
//!
//! The contract the cluster layer leans on: a chain of deltas applied in
//! sequence reproduces the final snapshot **byte for byte**, no matter how
//! the state mutated in between — so a replica that applies every delta
//! holds exactly the bytes a fresh full snapshot would ship.

use hta_snapshot::{DeltaError, Snapshot, SnapshotBuilder, SnapshotDelta};
use proptest::prelude::*;

/// A simple mutable "state": named sections with byte payloads, snapshotted
/// through the real container builder so determinism is end-to-end.
#[derive(Clone)]
struct State {
    sections: Vec<(String, Vec<u8>)>,
}

impl State {
    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut b = SnapshotBuilder::new("hta-delta-prop");
        for (name, payload) in &self.sections {
            b = b.section(name, payload.clone());
        }
        b.to_bytes()
    }

    /// Apply one encoded mutation: (section index, op, byte).
    /// op 0 = append byte, 1 = rewrite payload, 2 = drop section,
    /// 3 = add a fresh section derived from the byte.
    fn mutate(&mut self, section: usize, op: u8, byte: u8) {
        if self.sections.is_empty() {
            self.sections.push(("s0".into(), vec![byte]));
            return;
        }
        let i = section % self.sections.len();
        match op % 4 {
            0 => self.sections[i].1.push(byte),
            1 => self.sections[i].1 = vec![byte; (byte as usize % 17) + 1],
            2 => {
                self.sections.remove(i);
            }
            _ => {
                let name = format!("n{byte}");
                if self.sections.iter().all(|(n, _)| *n != name) {
                    self.sections.push((name, vec![byte, byte]));
                }
            }
        }
    }
}

proptest! {
    /// full snapshot + K mutations → delta chain → apply ≡ fresh full
    /// snapshot, byte for byte, at every link of the chain.
    #[test]
    fn delta_chain_equals_fresh_snapshot(
        seed_sections in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..8),
            1..5,
        ),
        mutations in proptest::collection::vec(
            (0usize..8, 0u8..=255, 0u8..=255),
            1..12,
        ),
    ) {
        let mut state = State {
            sections: seed_sections
                .iter()
                .enumerate()
                .map(|(i, p)| (format!("s{i}"), p.clone()))
                .collect(),
        };
        let mut replica_bytes = state.snapshot_bytes();
        for (epoch, (section, op, byte)) in mutations.into_iter().enumerate() {
            let epoch = epoch as u64;
            let base = state.snapshot_bytes();
            state.mutate(section, op, byte);
            let target = state.snapshot_bytes();
            let delta = SnapshotDelta::compute(&base, &target, epoch, epoch + 1).unwrap();
            // Ship over the wire: encode, decode, apply to the replica copy.
            let wire = delta.to_bytes();
            let decoded = SnapshotDelta::from_bytes(&wire).unwrap();
            prop_assert_eq!(decoded.base_epoch, epoch);
            replica_bytes = decoded.apply(&replica_bytes).unwrap();
            prop_assert_eq!(&replica_bytes, &target);
            // The rebuilt bytes are themselves a fully-valid snapshot.
            prop_assert!(Snapshot::from_bytes(&replica_bytes).is_ok());
        }
        prop_assert_eq!(replica_bytes, state.snapshot_bytes());
    }

    /// Any single flipped byte in a delta frame is rejected at decode time.
    #[test]
    fn flip_a_byte_is_rejected(
        payload in proptest::collection::vec(0u8..=255, 1..32),
        flip_at in 0usize..4096,
        bit in 0u8..8,
    ) {
        let base = SnapshotBuilder::new("k").section("x", vec![0; payload.len()]).to_bytes();
        let target = SnapshotBuilder::new("k").section("x", payload).to_bytes();
        let mut wire = SnapshotDelta::compute(&base, &target, 0, 1).unwrap().to_bytes();
        let i = flip_at % wire.len();
        wire[i] ^= 1 << bit;
        let err = SnapshotDelta::from_bytes(&wire);
        prop_assert!(err.is_err(), "flip at byte {} parsed: {:?}", i, err);
    }
}

/// Applying a delta to a base from the wrong epoch (different bytes) fails
/// loudly instead of producing a frankenstate — the version-gap fallback.
#[test]
fn stale_base_is_refused() {
    let mut state = State {
        sections: vec![("a".into(), vec![1, 2, 3]), ("b".into(), vec![4])],
    };
    let epoch0 = state.snapshot_bytes();
    state.mutate(0, 0, 9);
    let epoch1 = state.snapshot_bytes();
    state.mutate(1, 1, 7);
    let epoch2 = state.snapshot_bytes();

    // Delta 1→2 applied to epoch-0 bytes: the base CRC check fires because
    // section "a" changed between 0 and 1 but rides as "unchanged" in 1→2.
    let d12 = SnapshotDelta::compute(&epoch1, &epoch2, 1, 2).unwrap();
    assert!(matches!(
        d12.apply(&epoch0).unwrap_err(),
        DeltaError::BaseMismatch { .. }
    ));
    // The correct base still applies cleanly.
    assert_eq!(d12.apply(&epoch1).unwrap(), epoch2);
}
