//! # Snapshot deltas — section-level diffs between two snapshots
//!
//! A [`SnapshotDelta`] captures the difference between two snapshots of the
//! same kind as a *section diff*: the target's full section manifest (names
//! and payload CRCs, in final order) plus the payloads of only those
//! sections whose CRC changed or that are new. Applying the delta to the
//! base snapshot splices the unchanged payloads out of the base and the
//! changed ones out of the delta, reassembling the target **byte for byte**
//! — the container serialization in [`SnapshotBuilder`] is deterministic,
//! so `apply(base, compute(base, target)) == target` exactly.
//!
//! Deltas are themselves encoded as snapshot containers (kind
//! [`DELTA_KIND`]), so every byte on the wire is CRC-covered and a single
//! flipped bit is rejected at parse time, same as a full snapshot.
//!
//! Epochs: a delta carries `base_epoch` → `new_epoch`. A consumer whose
//! current epoch is not `base_epoch` (a version gap — e.g. a replica that
//! missed a delta) must not apply it; the cluster layer falls back to
//! shipping a full snapshot instead. A base whose sections do not match
//! the manifest's unchanged entries yields [`DeltaError::BaseMismatch`],
//! which callers treat the same way.

use crate::{crc32, Snapshot, SnapshotBuilder, SnapshotError};
use std::fmt;

/// Container kind tag used for encoded deltas.
pub const DELTA_KIND: &str = "hta-snapshot-delta";

/// Why a delta failed to compute, decode, or apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A snapshot (base, target, or the delta frame itself) failed to parse.
    Snapshot(SnapshotError),
    /// The base snapshot does not carry the section the manifest says is
    /// unchanged (or carries it with different bytes). The caller's base is
    /// from a different epoch: fall back to a full snapshot.
    BaseMismatch {
        /// The manifest section that the base could not supply.
        section: String,
    },
    /// The delta frame parsed as a container but is not a valid delta.
    Malformed(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Snapshot(e) => write!(f, "delta: {e}"),
            Self::BaseMismatch { section } => write!(
                f,
                "delta base mismatch on section {section:?} — apply a full snapshot instead"
            ),
            Self::Malformed(msg) => write!(f, "malformed delta: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<SnapshotError> for DeltaError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// One manifest entry: a target section's name and payload CRC.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    name: String,
    crc: u32,
    changed: bool,
}

/// A section-level diff that rebuilds a target snapshot from a base.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Epoch the base snapshot was published at.
    pub base_epoch: u64,
    /// Epoch the target snapshot is published at.
    pub new_epoch: u64,
    target_kind: String,
    manifest: Vec<ManifestEntry>,
    /// Payloads for manifest entries with `changed == true`, in manifest
    /// order.
    changed: Vec<Vec<u8>>,
}

impl SnapshotDelta {
    /// Diff two serialized snapshots. Sections present in the target with a
    /// payload CRC equal to the base's same-named section ride for free;
    /// everything else (changed or new) is carried in full. Sections only
    /// in the base are dropped by omission from the manifest.
    pub fn compute(
        base_bytes: &[u8],
        target_bytes: &[u8],
        base_epoch: u64,
        new_epoch: u64,
    ) -> Result<Self, DeltaError> {
        let base = Snapshot::from_bytes(base_bytes)?;
        let target = Snapshot::from_bytes(target_bytes)?;
        let mut manifest = Vec::new();
        let mut changed = Vec::new();
        for name in target.section_names() {
            let payload = target.section(name)?;
            let crc = crc32(payload);
            let same = base.section(name).map(|b| crc32(b) == crc).unwrap_or(false);
            if !same {
                changed.push(payload.to_vec());
            }
            manifest.push(ManifestEntry {
                name: name.to_owned(),
                crc,
                changed: !same,
            });
        }
        Ok(Self {
            base_epoch,
            new_epoch,
            target_kind: target.kind().to_owned(),
            manifest,
            changed,
        })
    }

    /// The kind tag of the target snapshot this delta rebuilds.
    pub fn target_kind(&self) -> &str {
        &self.target_kind
    }

    /// Names of the sections whose payloads this delta carries.
    pub fn changed_names(&self) -> impl Iterator<Item = &str> {
        self.manifest
            .iter()
            .filter(|e| e.changed)
            .map(|e| e.name.as_str())
    }

    /// Total payload bytes carried (the part that scales with the diff, as
    /// opposed to the manifest, which scales with the section count).
    pub fn carried_bytes(&self) -> usize {
        self.changed.iter().map(Vec::len).sum()
    }

    /// Rebuild the target snapshot's exact bytes from the base snapshot's
    /// bytes. Every unchanged section is pulled from the base and verified
    /// against the manifest CRC; a mismatch means the base is not the
    /// snapshot this delta was computed against.
    pub fn apply(&self, base_bytes: &[u8]) -> Result<Vec<u8>, DeltaError> {
        let base = Snapshot::from_bytes(base_bytes)?;
        let mut builder = SnapshotBuilder::new(&self.target_kind);
        let mut carried = self.changed.iter();
        for entry in &self.manifest {
            let payload: Vec<u8> = if entry.changed {
                let p = carried
                    .next()
                    .ok_or_else(|| DeltaError::Malformed("missing carried payload".into()))?;
                if crc32(p) != entry.crc {
                    return Err(DeltaError::Malformed(format!(
                        "carried payload for {:?} does not match its manifest CRC",
                        entry.name
                    )));
                }
                p.clone()
            } else {
                let p = base
                    .section(&entry.name)
                    .map_err(|_| DeltaError::BaseMismatch {
                        section: entry.name.clone(),
                    })?;
                if crc32(p) != entry.crc {
                    return Err(DeltaError::BaseMismatch {
                        section: entry.name.clone(),
                    });
                }
                p.to_vec()
            };
            builder = builder.section(&entry.name, payload);
        }
        Ok(builder.to_bytes())
    }

    /// Serialize to a self-verifying wire frame (a snapshot container of
    /// kind [`DELTA_KIND`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        meta.extend_from_slice(&self.base_epoch.to_le_bytes());
        meta.extend_from_slice(&self.new_epoch.to_le_bytes());
        meta.extend_from_slice(&(self.target_kind.len() as u16).to_le_bytes());
        meta.extend_from_slice(self.target_kind.as_bytes());
        meta.extend_from_slice(&(self.manifest.len() as u32).to_le_bytes());
        for entry in &self.manifest {
            meta.extend_from_slice(&(entry.name.len() as u16).to_le_bytes());
            meta.extend_from_slice(entry.name.as_bytes());
            meta.extend_from_slice(&entry.crc.to_le_bytes());
            meta.push(entry.changed as u8);
        }
        let mut builder = SnapshotBuilder::new(DELTA_KIND).section("meta", meta);
        for (i, payload) in self.changed.iter().enumerate() {
            builder = builder.section(&format!("d{i}"), payload.clone());
        }
        builder.to_bytes()
    }

    /// Parse and fully verify a delta frame produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DeltaError> {
        let snap = Snapshot::from_bytes(bytes)?;
        if snap.kind() != DELTA_KIND {
            return Err(DeltaError::Malformed(format!(
                "kind {:?} is not a snapshot delta",
                snap.kind()
            )));
        }
        let meta = snap.section("meta")?;
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], DeltaError> {
            if meta.len() - pos < n {
                return Err(DeltaError::Malformed("meta truncated".into()));
            }
            let out = &meta[pos..pos + n];
            pos += n;
            Ok(out)
        };
        let base_epoch = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let new_epoch = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let kind_len = u16::from_le_bytes(take(2)?.try_into().unwrap()) as usize;
        let target_kind = String::from_utf8(take(kind_len)?.to_vec())
            .map_err(|_| DeltaError::Malformed("target kind is not UTF-8".into()))?;
        let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let mut manifest = Vec::with_capacity(n.min(4096));
        let mut n_changed = 0usize;
        for _ in 0..n {
            let name_len = u16::from_le_bytes(take(2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(name_len)?.to_vec())
                .map_err(|_| DeltaError::Malformed("section name is not UTF-8".into()))?;
            let crc = u32::from_le_bytes(take(4)?.try_into().unwrap());
            let changed = match take(1)?[0] {
                0 => false,
                1 => true,
                b => return Err(DeltaError::Malformed(format!("bad changed flag {b}"))),
            };
            n_changed += changed as usize;
            manifest.push(ManifestEntry { name, crc, changed });
        }
        if pos != meta.len() {
            return Err(DeltaError::Malformed("trailing meta bytes".into()));
        }
        let mut changed = Vec::with_capacity(n_changed);
        for i in 0..n_changed {
            changed.push(snap.section(&format!("d{i}"))?.to_vec());
        }
        Ok(Self {
            base_epoch,
            new_epoch,
            target_kind,
            manifest,
            changed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(kind: &str, sections: &[(&str, Vec<u8>)]) -> Vec<u8> {
        let mut b = SnapshotBuilder::new(kind);
        for (name, payload) in sections {
            b = b.section(name, payload.clone());
        }
        b.to_bytes()
    }

    #[test]
    fn identical_snapshots_carry_nothing() {
        let a = snap("k", &[("x", vec![1, 2, 3]), ("y", vec![4])]);
        let d = SnapshotDelta::compute(&a, &a, 7, 8).unwrap();
        assert_eq!(d.carried_bytes(), 0);
        assert_eq!(d.changed_names().count(), 0);
        assert_eq!(d.apply(&a).unwrap(), a);
    }

    #[test]
    fn only_changed_sections_ride() {
        let base = snap(
            "k",
            &[("x", vec![1, 2, 3]), ("y", vec![4]), ("z", vec![5; 100])],
        );
        let target = snap(
            "k",
            &[("x", vec![1, 2, 3]), ("y", vec![9, 9]), ("z", vec![5; 100])],
        );
        let d = SnapshotDelta::compute(&base, &target, 1, 2).unwrap();
        assert_eq!(d.changed_names().collect::<Vec<_>>(), ["y"]);
        assert_eq!(d.carried_bytes(), 2);
        assert_eq!(d.apply(&base).unwrap(), target);
    }

    #[test]
    fn added_and_dropped_sections() {
        let base = snap("k", &[("x", vec![1]), ("gone", vec![2])]);
        let target = snap("k", &[("x", vec![1]), ("new", vec![3, 3])]);
        let d = SnapshotDelta::compute(&base, &target, 0, 1).unwrap();
        assert_eq!(d.changed_names().collect::<Vec<_>>(), ["new"]);
        assert_eq!(d.apply(&base).unwrap(), target);
    }

    #[test]
    fn wire_round_trip() {
        let base = snap("k", &[("x", vec![1, 2]), ("y", vec![3])]);
        let target = snap("k", &[("x", vec![1, 2]), ("y", vec![4, 5, 6])]);
        let d = SnapshotDelta::compute(&base, &target, 3, 4).unwrap();
        let wire = d.to_bytes();
        let back = SnapshotDelta::from_bytes(&wire).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.base_epoch, 3);
        assert_eq!(back.new_epoch, 4);
        assert_eq!(back.apply(&base).unwrap(), target);
    }

    #[test]
    fn wrong_base_is_rejected() {
        let base = snap("k", &[("x", vec![1]), ("y", vec![2])]);
        let target = snap("k", &[("x", vec![1]), ("y", vec![3])]);
        let other = snap("k", &[("x", vec![7]), ("y", vec![2])]);
        let d = SnapshotDelta::compute(&base, &target, 0, 1).unwrap();
        assert_eq!(
            d.apply(&other).unwrap_err(),
            DeltaError::BaseMismatch {
                section: "x".into()
            }
        );
        // A base missing the section entirely is the same failure.
        let missing = snap("k", &[("y", vec![2])]);
        assert!(matches!(
            d.apply(&missing).unwrap_err(),
            DeltaError::BaseMismatch { .. }
        ));
    }

    #[test]
    fn every_bit_flip_on_the_frame_is_rejected() {
        let base = snap("k", &[("x", vec![1, 2, 3])]);
        let target = snap("k", &[("x", vec![9, 9, 9])]);
        let wire = SnapshotDelta::compute(&base, &target, 0, 1)
            .unwrap()
            .to_bytes();
        let mut copy = wire.clone();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert!(
                    SnapshotDelta::from_bytes(&copy).is_err(),
                    "flip at byte {i} bit {bit} parsed"
                );
                copy[i] ^= 1 << bit;
            }
        }
        assert_eq!(copy, wire);
    }

    #[test]
    fn a_full_snapshot_is_not_a_delta() {
        let full = snap("k", &[("x", vec![1])]);
        assert!(matches!(
            SnapshotDelta::from_bytes(&full).unwrap_err(),
            DeltaError::Malformed(_)
        ));
    }
}
