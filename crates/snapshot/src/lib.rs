//! # hta-snapshot — versioned, checksummed, atomic snapshot container
//!
//! A std-only binary container for checkpoint/restore of long-running HTA
//! experiments and the serving state. The container is deliberately dumb:
//! it stores named, opaque byte **sections** and guarantees integrity and
//! atomicity; what the bytes mean is the business of `hta_core::state`'s
//! [`StateSerialize`](https://docs.rs) encoding in the producing crate.
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"HTASNAP\0"
//! 8       4     format version (u32 LE)
//! 12      2+k   kind   (u16 LE length + UTF-8)  e.g. "hta-crowd-run"
//! ..      4     section count (u32 LE)
//! ..      —     section table, per section:
//!                 name (u16 LE length + UTF-8)
//!                 payload length (u64 LE)
//!                 payload CRC-32/IEEE (u32 LE)
//! ..      4     header CRC-32 over every byte above
//! ..      —     payloads, concatenated in table order
//! ```
//!
//! Every byte of the file is covered by exactly one checksum (the header
//! CRC or a section CRC), so any single corrupted byte is detected. Loading
//! validates everything before returning: a [`Snapshot`] in hand is fully
//! verified, and a corrupt, truncated, or version-mismatched file yields a
//! precise [`SnapshotError`] — never a partially-restored value.
//!
//! Writing goes through [`SnapshotBuilder::write_atomic`]: the bytes are
//! written to a hidden temp file in the destination directory, `fsync`ed,
//! then `rename(2)`d over the target, so a crash mid-write never leaves a
//! torn file at the target path.

#![warn(missing_docs)]

pub mod crc32;
pub mod delta;

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

pub use crc32::crc32;
pub use delta::{DeltaError, SnapshotDelta, DELTA_KIND};

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"HTASNAP\0";

/// The container format version this crate reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound on the section count; a parsed count beyond this is corrupt.
const MAX_SECTIONS: usize = 4096;

/// Upper bound on kind/section-name lengths (bytes).
const MAX_NAME_LEN: usize = 4096;

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(String),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file is a snapshot, but from an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this crate supports.
        supported: u32,
    },
    /// The file ends before a field it promised.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes the field required.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A checksum did not match — the covered bytes are corrupt.
    ChecksumMismatch {
        /// `"header"` or the section name.
        region: String,
    },
    /// A requested section is not present in the file.
    MissingSection(String),
    /// The file is structurally malformed (bad UTF-8, duplicate names,
    /// absurd counts, trailing bytes, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {supported})"
            ),
            Self::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated while reading {context}: needed {needed} bytes, {available} available"
            ),
            Self::ChecksumMismatch { region } => {
                write!(f, "snapshot checksum mismatch in {region} — file is corrupt")
            }
            Self::MissingSection(name) => write!(f, "snapshot is missing section {name:?}"),
            Self::Corrupt(msg) => write!(f, "snapshot is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Assembles a snapshot: a kind tag plus named byte sections.
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// A builder for a snapshot of the given `kind` (an application-level
    /// tag, e.g. `"hta-crowd-run"`, checked by consumers on load).
    ///
    /// # Panics
    /// Panics if `kind` exceeds [`MAX_NAME_LEN`] bytes.
    pub fn new(kind: &str) -> Self {
        assert!(kind.len() <= MAX_NAME_LEN, "snapshot kind too long");
        Self {
            kind: kind.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Append a named section.
    ///
    /// # Panics
    /// Panics on a duplicate section name or an over-long name — both are
    /// programming errors in the producer.
    pub fn section(mut self, name: &str, payload: Vec<u8>) -> Self {
        assert!(name.len() <= MAX_NAME_LEN, "section name too long");
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section {name:?}"
        );
        assert!(self.sections.len() < MAX_SECTIONS, "too many sections");
        self.sections.push((name.to_owned(), payload));
        self
    }

    /// Serialize to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.kind.len() as u16).to_le_bytes());
        out.extend_from_slice(self.kind.as_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Atomically write the snapshot to `path`: the bytes go to a hidden
    /// temp file in the same directory, are `fsync`ed, and the temp file is
    /// renamed over `path`. A crash at any point leaves either the old file
    /// or the new one at `path`, never a torn mix.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let bytes = self.to_bytes();
        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let tmp = dir.join(format!(
            ".{}.tmp.{}",
            file_name.to_string_lossy(),
            std::process::id()
        ));
        let result = (|| {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, path)?;
            // Make the rename itself durable. Failures here are ignored:
            // the data is safe, only the directory entry may be replayed.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

/// A fully-verified, loaded snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

/// Bounds-checked little-endian cursor used by the parser.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(SnapshotError::Truncated {
                context,
                needed: n as u64,
                available: available as u64,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn name(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let len = self.u16(context)? as usize;
        if len > MAX_NAME_LEN {
            return Err(SnapshotError::Corrupt(format!("{context} length {len}")));
        }
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("{context} is not UTF-8")))
    }
}

impl Snapshot {
    /// Parse and fully verify a snapshot from raw bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        let magic = c.take(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = c.u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = c.name("kind")?;
        let n_sections = c.u32("section count")? as usize;
        if n_sections > MAX_SECTIONS {
            return Err(SnapshotError::Corrupt(format!(
                "section count {n_sections} exceeds the limit {MAX_SECTIONS}"
            )));
        }
        let mut table: Vec<(String, u64, u32)> = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name = c.name("section name")?;
            if table.iter().any(|(n, _, _)| *n == name) {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate section {name:?}"
                )));
            }
            let len = c.u64("section length")?;
            let crc = c.u32("section checksum")?;
            table.push((name, len, crc));
        }
        let header_end = c.pos;
        let stored_header_crc = c.u32("header checksum")?;
        if crc32(&bytes[..header_end]) != stored_header_crc {
            return Err(SnapshotError::ChecksumMismatch {
                region: "header".to_owned(),
            });
        }
        let mut sections = Vec::with_capacity(table.len());
        for (name, len, crc) in table {
            let len = usize::try_from(len)
                .map_err(|_| SnapshotError::Corrupt(format!("section {name:?} length {len}")))?;
            let payload = {
                let available = bytes.len() - c.pos;
                if len > available {
                    return Err(SnapshotError::Truncated {
                        context: "section payload",
                        needed: len as u64,
                        available: available as u64,
                    });
                }
                c.take(len, "section payload")?
            };
            if crc32(payload) != crc {
                return Err(SnapshotError::ChecksumMismatch { region: name });
            }
            sections.push((name, payload.to_vec()));
        }
        if c.pos != bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last section",
                bytes.len() - c.pos
            )));
        }
        Ok(Self { kind, sections })
    }

    /// Load and fully verify a snapshot file.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// The application-level kind tag.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Section names, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// A section's payload, or [`SnapshotError::MissingSection`].
    pub fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| SnapshotError::MissingSection(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotBuilder {
        SnapshotBuilder::new("hta-test")
            .section("alpha", vec![1, 2, 3, 4, 5])
            .section("beta", (0..=255u8).collect())
            .section("empty", Vec::new())
    }

    #[test]
    fn round_trip() {
        let bytes = sample().to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.kind(), "hta-test");
        assert_eq!(
            snap.section_names().collect::<Vec<_>>(),
            ["alpha", "beta", "empty"]
        );
        assert_eq!(snap.section("alpha").unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(snap.section("beta").unwrap().len(), 256);
        assert_eq!(snap.section("empty").unwrap(), &[] as &[u8]);
        assert_eq!(
            snap.section("gamma").unwrap_err(),
            SnapshotError::MissingSection("gamma".into())
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of length {cut} parsed");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().to_bytes();
        let mut copy = bytes.clone();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&copy).is_err(),
                    "flip at byte {i} bit {bit} parsed"
                );
                copy[i] ^= 1 << bit;
            }
        }
        assert_eq!(copy, bytes);
    }

    #[test]
    fn precise_errors() {
        let bytes = sample().to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Snapshot::from_bytes(&bad_magic).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert_eq!(
            Snapshot::from_bytes(&bad_version).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );

        // Flip a payload byte: the owning section is named in the error.
        let mut bad_payload = bytes.clone();
        let last = bad_payload.len() - 1; // inside "beta" (its final byte)
        bad_payload[last] ^= 0x80;
        assert_eq!(
            Snapshot::from_bytes(&bad_payload).unwrap_err(),
            SnapshotError::ChecksumMismatch {
                region: "beta".into()
            }
        );

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&trailing).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let bytes = SnapshotBuilder::new("empty").to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.kind(), "empty");
        assert_eq!(snap.section_names().count(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_section_panics() {
        let _ = SnapshotBuilder::new("k")
            .section("a", vec![])
            .section("a", vec![]);
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("hta-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.htasnap");

        sample().write_atomic(&path).unwrap();
        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.kind(), "hta-test");

        // Overwrite with different content; the file is replaced whole.
        SnapshotBuilder::new("second")
            .section("s", vec![9])
            .write_atomic(&path)
            .unwrap();
        assert_eq!(Snapshot::load(&path).unwrap().kind(), "second");

        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_no_target() {
        let dir = std::env::temp_dir().join(format!("hta-snap-missing-{}", std::process::id()));
        // Parent directory does not exist: the write must fail and must not
        // create the target.
        let path = dir.join("nested").join("run.htasnap");
        assert!(sample().write_atomic(&path).is_err());
        assert!(!path.exists());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Snapshot::load(Path::new("/nonexistent/run.htasnap")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }
}
