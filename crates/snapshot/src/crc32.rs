//! CRC-32/IEEE (the zlib/gzip polynomial), table-driven, std-only.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC catalogue "check" value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"holistic task assignment";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let data = b"snapshot payload bytes";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
