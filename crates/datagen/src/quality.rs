//! The answer-quality model: deciding whether a completed micro-task
//! passes verification.
//!
//! CrowdFlower-style platforms grade submitted work against gold questions
//! and accept it when the worker clears a kind-relative bar. This model is
//! deliberately **deterministic**: the verdict is a pure function of the
//! ground-truth outcome the behaviour model already produced (questions
//! answered, questions correct) — no extra random draws — so enabling the
//! lifecycle layer never perturbs the calibrated RNG streams, and a
//! checkpointed run replays bit-for-bit.

use crate::crowdflower::KINDS;

/// Grades completions: pass when the observed accuracy reaches
/// `pass_threshold` × the task kind's base accuracy.
///
/// Kinds differ widely in how hard they are (base accuracy 64–86% across
/// the 22 CrowdFlower kinds), so a fixed absolute bar would reject nearly
/// everything on hard kinds and nothing on easy ones. Grading *relative to
/// the kind* keeps the rejection pressure comparable across the catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityModel {
    /// Fraction of the kind's base accuracy a submission must reach to
    /// pass verification. `0` accepts everything; values near `1` reject
    /// below-average work for the kind.
    pub pass_threshold: f64,
}

impl Default for QualityModel {
    /// Pass at ≥ 90% of the kind's expected accuracy — lenient enough that
    /// ordinary skilled work passes, strict enough that bored or
    /// out-of-depth work gets requeued.
    fn default() -> Self {
        Self {
            pass_threshold: 0.9,
        }
    }
}

impl QualityModel {
    /// A model with an explicit threshold.
    ///
    /// # Panics
    /// Panics unless `pass_threshold` is finite and non-negative.
    pub fn new(pass_threshold: f64) -> Self {
        assert!(
            pass_threshold.is_finite() && pass_threshold >= 0.0,
            "pass threshold must be finite and >= 0, got {pass_threshold}"
        );
        Self { pass_threshold }
    }

    /// The absolute accuracy bar for a task kind (index into
    /// [`KINDS`]; out-of-range kinds use the catalog-mean base accuracy).
    pub fn bar_for_kind(&self, kind: usize) -> f64 {
        let base_pct = KINDS
            .get(kind)
            .map(|k| k.base_accuracy_pct)
            .unwrap_or_else(|| {
                KINDS.iter().map(|k| k.base_accuracy_pct).sum::<u32>() / KINDS.len() as u32
            });
        self.pass_threshold * (base_pct as f64 / 100.0)
    }

    /// The verdict for a completion: did `correct` out of `questions`
    /// clear the kind's bar? Completions with no gold questions pass (there
    /// is nothing to grade against).
    pub fn passes(&self, kind: usize, questions: u32, correct: u32) -> bool {
        if questions == 0 {
            return true;
        }
        correct as f64 / questions as f64 >= self.bar_for_kind(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bar_tracks_kind_difficulty() {
        let q = QualityModel::default();
        // Kind 0 has base accuracy 82%: the bar is 0.9 * 0.82 = 0.738.
        assert!((q.bar_for_kind(0) - 0.738).abs() < 1e-12);
        assert!(q.passes(0, 10, 8));
        assert!(!q.passes(0, 10, 7));
        // A harder kind (base 64%) grades the same raw score differently.
        let hard = KINDS
            .iter()
            .position(|k| k.base_accuracy_pct == 64)
            .unwrap();
        assert!(q.passes(hard, 10, 6));
    }

    #[test]
    fn edge_cases() {
        let q = QualityModel::default();
        assert!(q.passes(0, 0, 0), "nothing to grade passes");
        assert!(
            QualityModel::new(0.0).passes(0, 10, 0),
            "zero bar passes all"
        );
        // Out-of-range kind falls back to the mean bar, not a panic.
        assert!(q.passes(usize::MAX, 10, 9));
        // Determinism: same inputs, same verdict.
        for _ in 0..3 {
            assert_eq!(q.passes(3, 7, 5), q.passes(3, 7, 5));
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_threshold_rejected() {
        let _ = QualityModel::new(f64::NAN);
    }
}
