//! Keyword vocabulary construction.
//!
//! The generator vocabularies mix a seed list of real crowdsourcing
//! keywords (observed on AMT/CrowdFlower task listings) with synthetic
//! `domain-modifier` compounds, so any requested vocabulary size is
//! available while the most frequent keywords stay realistic.

use hta_core::KeywordSpace;

/// Real-world keywords that dominate AMT/CrowdFlower listings. These occupy
/// the lowest ranks, so Zipf-distributed keyword draws use them most often.
pub const SEED_KEYWORDS: &[&str] = &[
    "english",
    "survey",
    "data-collection",
    "audio",
    "transcription",
    "image",
    "tagging",
    "sentiment-analysis",
    "tweets",
    "classification",
    "news",
    "video",
    "annotation",
    "search",
    "web-research",
    "categorization",
    "writing",
    "translation",
    "moderation",
    "receipts",
    "entity-resolution",
    "product-matching",
    "speech",
    "ocr",
    "street-view",
    "medical",
    "legal",
    "sports",
    "finance",
    "music",
    "photos",
    "qa",
    "spanish",
    "french",
    "german",
    "reviews",
    "ratings",
    "shopping",
    "travel",
    "food",
];

const DOMAINS: &[&str] = &[
    "retail",
    "social",
    "maps",
    "books",
    "movies",
    "health",
    "auto",
    "fashion",
    "gaming",
    "crypto",
    "weather",
    "jobs",
    "realestate",
    "science",
    "politics",
    "education",
    "pets",
    "gardening",
    "fitness",
    "photography",
];

const MODIFIERS: &[&str] = &[
    "labeling",
    "verification",
    "extraction",
    "dedup",
    "sorting",
    "rating",
    "captioning",
    "segmentation",
    "linking",
    "cleanup",
    "summarization",
    "comparison",
    "detection",
    "lookup",
    "typing",
    "listing",
    "counting",
    "matching",
    "grading",
    "screening",
];

/// Build a [`KeywordSpace`] of exactly `size` keywords: the seed list first,
/// then `domain-modifier` compounds, then numbered filler if `size` exceeds
/// the compound space.
pub fn build_vocabulary(size: usize) -> KeywordSpace {
    let mut space = KeywordSpace::new();
    for kw in SEED_KEYWORDS.iter().take(size) {
        space.intern(kw);
    }
    'outer: for d in DOMAINS {
        for m in MODIFIERS {
            if space.len() >= size {
                break 'outer;
            }
            space.intern(&format!("{d}-{m}"));
        }
    }
    let mut i = 0usize;
    while space.len() < size {
        space.intern(&format!("keyword-{i}"));
        i += 1;
    }
    space
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_small() {
        let v = build_vocabulary(10);
        assert_eq!(v.len(), 10);
        assert!(v.get("english").is_some());
    }

    #[test]
    fn exact_size_medium_uses_compounds() {
        let v = build_vocabulary(200);
        assert_eq!(v.len(), 200);
        assert!(v.get("retail-labeling").is_some());
    }

    #[test]
    fn exact_size_large_uses_filler() {
        let v = build_vocabulary(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.get("keyword-0").is_some());
    }

    #[test]
    fn zero_size() {
        let v = build_vocabulary(0);
        assert!(v.is_empty());
    }

    #[test]
    fn keywords_are_distinct() {
        // Interning is idempotent, so len == size proves distinctness, but
        // double-check a sample.
        let v = build_vocabulary(500);
        assert_eq!(v.len(), 500);
    }
}
