//! CrowdFlower-like micro-task catalog.
//!
//! Substitutes the paper's set of 158,018 CrowdFlower micro-tasks across
//! **22 kinds** (tweet classification, web search, image transcription,
//! sentiment analysis, entity resolution, news extraction, …), each kind
//! carrying descriptive keywords and a reward between $0.01 and $0.12, with
//! ground truth available for a sample of questions (Section V-C).
//!
//! Tasks are generated per kind; each task has 1–3 multiple-choice
//! questions with known ground truth, so the online simulator can score
//! crowdwork quality exactly as the paper does.

use hta_core::state::{StateDecodeError, StateReader, StateSerialize};
use hta_core::{GroupId, KeywordSpace, KeywordVec, Task, TaskId, TaskPool};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One of the 22 micro-task kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskKind {
    /// Stable kind index `0..22`.
    pub index: usize,
    /// Human-readable name.
    pub name: &'static str,
    /// Keywords describing the kind's content and requirements.
    pub keywords: &'static [&'static str],
    /// Reward range in cents (inclusive), within the paper's $0.01–$0.12.
    pub reward_cents: (u32, u32),
    /// Baseline probability that an *average, fresh* worker answers a
    /// question of this kind correctly (difficulty knob for the simulator).
    pub base_accuracy_pct: u32,
}

/// The 22 kinds, modelled on the examples the paper names plus common
/// CrowdFlower catalog entries.
pub const KINDS: &[TaskKind] = &[
    TaskKind {
        index: 0,
        name: "tweet-classification",
        keywords: &["tweets", "classification", "english", "social"],
        reward_cents: (1, 4),
        base_accuracy_pct: 82,
    },
    TaskKind {
        index: 1,
        name: "web-search-relevance",
        keywords: &["search", "web-research", "relevance", "english"],
        reward_cents: (2, 6),
        base_accuracy_pct: 76,
    },
    TaskKind {
        index: 2,
        name: "image-transcription",
        keywords: &["image", "transcription", "ocr", "typing"],
        reward_cents: (3, 8),
        base_accuracy_pct: 74,
    },
    TaskKind {
        index: 3,
        name: "sentiment-analysis",
        keywords: &["sentiment-analysis", "english", "reviews"],
        reward_cents: (1, 4),
        base_accuracy_pct: 80,
    },
    TaskKind {
        index: 4,
        name: "entity-resolution",
        keywords: &["entity-resolution", "product-matching", "dedup"],
        reward_cents: (4, 10),
        base_accuracy_pct: 70,
    },
    TaskKind {
        index: 5,
        name: "news-extraction",
        keywords: &["news", "extraction", "english", "annotation"],
        reward_cents: (3, 9),
        base_accuracy_pct: 72,
    },
    TaskKind {
        index: 6,
        name: "audio-transcription",
        keywords: &["audio", "transcription", "english", "speech"],
        reward_cents: (5, 12),
        base_accuracy_pct: 68,
    },
    TaskKind {
        index: 7,
        name: "image-tagging",
        keywords: &["image", "tagging", "photos", "annotation"],
        reward_cents: (1, 5),
        base_accuracy_pct: 84,
    },
    TaskKind {
        index: 8,
        name: "street-view-labeling",
        keywords: &["street-view", "maps", "image", "labeling"],
        reward_cents: (2, 6),
        base_accuracy_pct: 78,
    },
    TaskKind {
        index: 9,
        name: "receipt-digitization",
        keywords: &["receipts", "ocr", "typing", "shopping"],
        reward_cents: (4, 10),
        base_accuracy_pct: 71,
    },
    TaskKind {
        index: 10,
        name: "product-categorization",
        keywords: &["categorization", "shopping", "retail"],
        reward_cents: (2, 6),
        base_accuracy_pct: 79,
    },
    TaskKind {
        index: 11,
        name: "video-moderation",
        keywords: &["video", "moderation", "classification"],
        reward_cents: (3, 9),
        base_accuracy_pct: 75,
    },
    TaskKind {
        index: 12,
        name: "survey-completion",
        keywords: &["survey", "data-collection", "english"],
        reward_cents: (5, 12),
        base_accuracy_pct: 86,
    },
    TaskKind {
        index: 13,
        name: "translation-check",
        keywords: &["translation", "spanish", "english", "verification"],
        reward_cents: (4, 11),
        base_accuracy_pct: 69,
    },
    TaskKind {
        index: 14,
        name: "medical-coding",
        keywords: &["medical", "annotation", "classification"],
        reward_cents: (6, 12),
        base_accuracy_pct: 64,
    },
    TaskKind {
        index: 15,
        name: "legal-document-tagging",
        keywords: &["legal", "annotation", "english"],
        reward_cents: (6, 12),
        base_accuracy_pct: 65,
    },
    TaskKind {
        index: 16,
        name: "sports-trivia-verification",
        keywords: &["sports", "verification", "qa"],
        reward_cents: (1, 4),
        base_accuracy_pct: 83,
    },
    TaskKind {
        index: 17,
        name: "restaurant-matching",
        keywords: &["food", "product-matching", "maps"],
        reward_cents: (2, 7),
        base_accuracy_pct: 77,
    },
    TaskKind {
        index: 18,
        name: "music-genre-tagging",
        keywords: &["music", "tagging", "classification"],
        reward_cents: (1, 5),
        base_accuracy_pct: 81,
    },
    TaskKind {
        index: 19,
        name: "travel-review-rating",
        keywords: &["travel", "reviews", "ratings", "english"],
        reward_cents: (2, 6),
        base_accuracy_pct: 80,
    },
    TaskKind {
        index: 20,
        name: "finance-news-sentiment",
        keywords: &["finance", "news", "sentiment-analysis"],
        reward_cents: (3, 8),
        base_accuracy_pct: 73,
    },
    TaskKind {
        index: 21,
        name: "photo-quality-rating",
        keywords: &["photos", "ratings", "image"],
        reward_cents: (1, 4),
        base_accuracy_pct: 85,
    },
];

/// A multiple-choice question with ground truth (the paper scores quality
/// against CrowdFlower's provided ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Question {
    /// Number of answer options (2–4).
    pub n_options: u8,
    /// The correct option, `< n_options`.
    pub ground_truth: u8,
}

/// A micro-task: the core [`Task`] plus its kind and questions.
#[derive(Debug, Clone)]
pub struct MicroTask {
    /// The core task (keywords, group = kind, reward).
    pub task: Task,
    /// Kind index into [`KINDS`].
    pub kind: usize,
    /// The task's questions with ground truth.
    pub questions: Vec<Question>,
}

/// Catalog generation parameters.
#[derive(Debug, Clone)]
pub struct CrowdflowerConfig {
    /// Total number of micro-tasks, spread round-robin over the 22 kinds.
    pub n_tasks: usize,
    /// Inclusive range of questions per task (the paper averages ≈1.6).
    pub questions_per_task: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrowdflowerConfig {
    fn default() -> Self {
        Self {
            n_tasks: 2000,
            questions_per_task: (1, 3),
            seed: 0xCF,
        }
    }
}

impl StateSerialize for CrowdflowerConfig {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.n_tasks.write_state(out);
        self.questions_per_task.0.write_state(out);
        self.questions_per_task.1.write_state(out);
        self.seed.write_state(out);
    }

    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let n_tasks = usize::read_state(r)?;
        let lo = usize::read_state(r)?;
        let hi = usize::read_state(r)?;
        let seed = u64::read_state(r)?;
        if lo > hi {
            return Err(StateDecodeError::Invalid(format!(
                "questions_per_task range ({lo}, {hi}) inverted"
            )));
        }
        Ok(Self {
            n_tasks,
            questions_per_task: (lo, hi),
            seed,
        })
    }
}

/// The generated catalog.
#[derive(Debug)]
pub struct CrowdflowerCatalog {
    /// The keyword universe (union of all kinds' keywords).
    pub space: KeywordSpace,
    /// The generated micro-tasks.
    pub tasks: Vec<MicroTask>,
}

impl CrowdflowerCatalog {
    /// Generate a catalog. Deterministic in the seed.
    pub fn generate(cfg: &CrowdflowerConfig) -> Self {
        let (qmin, qmax) = cfg.questions_per_task;
        assert!(qmin >= 1 && qmin <= qmax, "bad questions_per_task range");
        let mut space = KeywordSpace::new();
        for kind in KINDS {
            for kw in kind.keywords {
                space.intern(kw);
            }
        }
        let width = space.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut tasks = Vec::with_capacity(cfg.n_tasks);
        for i in 0..cfg.n_tasks {
            let kind = &KINDS[i % KINDS.len()];
            let ids: Vec<usize> = kind
                .keywords
                .iter()
                .map(|k| space.get(k).expect("interned above").0 as usize)
                .collect();
            let keywords = KeywordVec::from_indices(width, &ids);
            let reward = rng.random_range(kind.reward_cents.0..=kind.reward_cents.1);
            let n_questions = rng.random_range(qmin..=qmax);
            let questions = (0..n_questions)
                .map(|_| {
                    let n_options = rng.random_range(2..=4u8);
                    Question {
                        n_options,
                        ground_truth: rng.random_range(0..n_options),
                    }
                })
                .collect();
            tasks.push(MicroTask {
                task: Task::new(TaskId(i as u32), GroupId(kind.index as u32), keywords)
                    .with_reward_cents(reward),
                kind: kind.index,
                questions,
            });
        }
        Self { space, tasks }
    }

    /// Extract the plain [`TaskPool`] for the core solvers (kind = group).
    pub fn task_pool(&self) -> TaskPool {
        let mut pool = TaskPool::new();
        for mt in &self.tasks {
            pool.push_task(mt.task.clone());
        }
        pool
    }

    /// Mean reward over the catalog, in dollars.
    pub fn mean_reward_dollars(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        let cents: u32 = self.tasks.iter().map(|t| t.task.reward_cents).sum();
        cents as f64 / self.tasks.len() as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_kinds() {
        assert_eq!(KINDS.len(), 22);
        for (i, k) in KINDS.iter().enumerate() {
            assert_eq!(k.index, i);
            assert!(!k.keywords.is_empty());
            assert!(k.reward_cents.0 >= 1 && k.reward_cents.1 <= 12);
            assert!(k.reward_cents.0 <= k.reward_cents.1);
            assert!((50..=95).contains(&k.base_accuracy_pct));
        }
    }

    #[test]
    fn catalog_covers_all_kinds() {
        let cat = CrowdflowerCatalog::generate(&CrowdflowerConfig {
            n_tasks: 44,
            ..Default::default()
        });
        assert_eq!(cat.tasks.len(), 44);
        for kind in 0..22 {
            assert_eq!(cat.tasks.iter().filter(|t| t.kind == kind).count(), 2);
        }
    }

    #[test]
    fn questions_have_valid_ground_truth() {
        let cat = CrowdflowerCatalog::generate(&CrowdflowerConfig::default());
        for t in &cat.tasks {
            assert!(!t.questions.is_empty());
            assert!(t.questions.len() <= 3);
            for q in &t.questions {
                assert!((2..=4).contains(&q.n_options));
                assert!(q.ground_truth < q.n_options);
            }
        }
    }

    #[test]
    fn rewards_in_paper_range() {
        let cat = CrowdflowerCatalog::generate(&CrowdflowerConfig::default());
        for t in &cat.tasks {
            assert!((1..=12).contains(&t.task.reward_cents));
        }
        let mean = cat.mean_reward_dollars();
        assert!(mean > 0.01 && mean < 0.12);
    }

    #[test]
    fn task_pool_preserves_kind_as_group() {
        let cat = CrowdflowerCatalog::generate(&CrowdflowerConfig {
            n_tasks: 100,
            ..Default::default()
        });
        let pool = cat.task_pool();
        assert_eq!(pool.len(), 100);
        assert_eq!(pool.group_count(), 22);
        for (mt, t) in cat.tasks.iter().zip(pool.tasks()) {
            assert_eq!(t.group.0 as usize, mt.kind);
            assert_eq!(t.keywords, mt.task.keywords);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CrowdflowerCatalog::generate(&CrowdflowerConfig::default());
        let b = CrowdflowerCatalog::generate(&CrowdflowerConfig::default());
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.task.reward_cents, y.task.reward_cents);
            assert_eq!(x.questions, y.questions);
        }
    }
}
