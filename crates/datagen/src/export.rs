//! Plain-text (CSV) export/import of generated workloads.
//!
//! Experiments should be shareable: a generated AMT-like corpus or
//! CrowdFlower-like catalog can be written to a small CSV format and read
//! back bit-for-bit, so a result can be reproduced from the artifact alone
//! (no reliance on generator version + seed). The format is deliberately
//! simple: one header line, one line per task, keywords `;`-separated.

use std::fmt::Write as _;

use hta_core::{GroupId, KeywordSpace, KeywordVec, Task, TaskId, TaskPool, Weights, WorkerPool};

/// Serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line was missing or malformed.
    BadHeader(String),
    /// A data line did not have the expected number of fields.
    BadRecord {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader(h) => write!(f, "bad header: '{h}'"),
            Self::BadRecord { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

const HEADER: &str = "task_id,group_id,reward_cents,keywords";
const WORKER_HEADER: &str = "worker_id,alpha,beta,keywords";

/// Serialize a task pool (with its keyword universe) to CSV.
pub fn tasks_to_csv(space: &KeywordSpace, tasks: &TaskPool) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for t in tasks.tasks() {
        let kws: Vec<&str> = t
            .keywords
            .iter_ones()
            .map(|i| space.name(hta_core::KeywordId(i as u32)))
            .collect();
        let _ = writeln!(
            out,
            "{},{},{},{}",
            t.id.0,
            t.group.0,
            t.reward_cents,
            kws.join(";")
        );
    }
    out
}

/// Parse a CSV produced by [`tasks_to_csv`]. Returns the reconstructed
/// keyword universe and pool; keyword ids are re-interned in order of first
/// appearance, so round-tripping preserves set contents (not raw bit ids).
pub fn tasks_from_csv(csv: &str) -> Result<(KeywordSpace, TaskPool), ParseError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => return Err(ParseError::BadHeader(h.to_owned())),
        None => return Err(ParseError::BadHeader(String::new())),
    }

    // Pass 1: collect records and intern keywords.
    let mut space = KeywordSpace::new();
    let mut records: Vec<(u32, u32, Vec<String>)> = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, ',').collect();
        if fields.len() != 4 {
            return Err(ParseError::BadRecord {
                line: lineno + 1,
                reason: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let group: u32 = fields[1].parse().map_err(|_| ParseError::BadRecord {
            line: lineno + 1,
            reason: format!("bad group id '{}'", fields[1]),
        })?;
        let reward: u32 = fields[2].parse().map_err(|_| ParseError::BadRecord {
            line: lineno + 1,
            reason: format!("bad reward '{}'", fields[2]),
        })?;
        let kws: Vec<String> = fields[3]
            .split(';')
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        for k in &kws {
            space.intern(k);
        }
        records.push((group, reward, kws));
    }

    // Pass 2: build vectors over the final universe.
    let width = space.len();
    let mut pool = TaskPool::new();
    for (group, reward, kws) in records {
        let ids: Vec<usize> = kws
            .iter()
            .map(|k| space.get(k).expect("interned in pass 1").0 as usize)
            .collect();
        let task = Task::new(
            TaskId(0),
            GroupId(group),
            KeywordVec::from_indices(width, &ids),
        )
        .with_reward_cents(reward);
        pool.push_task(task);
    }
    Ok((space, pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amt::{generate, AmtConfig};

    #[test]
    fn roundtrip_preserves_structure() {
        let w = generate(&AmtConfig {
            n_groups: 8,
            tasks_per_group: 3,
            vocab_size: 60,
            ..Default::default()
        });
        let csv = tasks_to_csv(&w.space, &w.tasks);
        let (space2, pool2) = tasks_from_csv(&csv).unwrap();
        assert_eq!(pool2.len(), w.tasks.len());
        assert_eq!(pool2.group_count(), w.tasks.group_count());
        // Keyword *sets* survive (ids may be renumbered).
        for (a, b) in w.tasks.tasks().iter().zip(pool2.tasks()) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.reward_cents, b.reward_cents);
            let names_a: std::collections::BTreeSet<String> = a
                .keywords
                .iter_ones()
                .map(|i| w.space.name(hta_core::KeywordId(i as u32)).to_owned())
                .collect();
            let names_b: std::collections::BTreeSet<String> = b
                .keywords
                .iter_ones()
                .map(|i| space2.name(hta_core::KeywordId(i as u32)).to_owned())
                .collect();
            assert_eq!(names_a, names_b);
        }
    }

    #[test]
    fn double_roundtrip_is_identical_text() {
        let w = generate(&AmtConfig {
            n_groups: 4,
            tasks_per_group: 2,
            vocab_size: 30,
            ..Default::default()
        });
        let csv1 = tasks_to_csv(&w.space, &w.tasks);
        let (s2, p2) = tasks_from_csv(&csv1).unwrap();
        let csv2 = tasks_to_csv(&s2, &p2);
        let (s3, p3) = tasks_from_csv(&csv2).unwrap();
        let csv3 = tasks_to_csv(&s3, &p3);
        assert_eq!(csv2, csv3, "serialization must reach a fixed point");
        assert_eq!(p2.len(), p3.len());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            tasks_from_csv("nope\n1,2,3,a"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(tasks_from_csv(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn rejects_malformed_records() {
        let bad_fields = format!("{HEADER}\n1,2,3");
        assert!(matches!(
            tasks_from_csv(&bad_fields),
            Err(ParseError::BadRecord { .. })
        ));
        let bad_reward = format!("{HEADER}\n1,2,xx,a;b");
        let err = tasks_from_csv(&bad_reward).unwrap_err();
        assert!(err.to_string().contains("bad reward"));
    }

    #[test]
    fn empty_keyword_list_allowed() {
        let csv = format!("{HEADER}\n0,5,7,\n");
        let (_, pool) = tasks_from_csv(&csv).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.get(TaskId(0)).keywords.count_ones(), 0);
        assert_eq!(pool.get(TaskId(0)).reward_cents, 7);
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = format!("{HEADER}\n\n0,1,2,a\n\n");
        let (_, pool) = tasks_from_csv(&csv).unwrap();
        assert_eq!(pool.len(), 1);
    }
}

/// Serialize a worker pool to CSV (over the same keyword universe as the
/// tasks they will be matched with).
pub fn workers_to_csv(space: &KeywordSpace, workers: &WorkerPool) -> String {
    let mut out = String::new();
    out.push_str(WORKER_HEADER);
    out.push('\n');
    for w in workers.workers() {
        let kws: Vec<&str> = w
            .keywords
            .iter_ones()
            .map(|i| space.name(hta_core::KeywordId(i as u32)))
            .collect();
        let _ = writeln!(
            out,
            "{},{},{},{}",
            w.id.0,
            w.weights.alpha(),
            w.weights.beta(),
            kws.join(";")
        );
    }
    out
}

/// Parse a worker CSV against an existing keyword universe (typically the
/// one reconstructed from the task CSV). Unknown keywords are interned into
/// `space`, widening the universe; re-widen task vectors afterwards if that
/// happens (see [`KeywordSpace::widen`]).
pub fn workers_from_csv(space: &mut KeywordSpace, csv: &str) -> Result<WorkerPool, ParseError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == WORKER_HEADER => {}
        Some((_, h)) => return Err(ParseError::BadHeader(h.to_owned())),
        None => return Err(ParseError::BadHeader(String::new())),
    }
    let mut records: Vec<(f64, f64, Vec<String>)> = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, ',').collect();
        if fields.len() != 4 {
            return Err(ParseError::BadRecord {
                line: lineno + 1,
                reason: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let alpha: f64 = fields[1].parse().map_err(|_| ParseError::BadRecord {
            line: lineno + 1,
            reason: format!("bad alpha '{}'", fields[1]),
        })?;
        let beta: f64 = fields[2].parse().map_err(|_| ParseError::BadRecord {
            line: lineno + 1,
            reason: format!("bad beta '{}'", fields[2]),
        })?;
        if !(0.0..=1.0).contains(&alpha) || !(0.0..=1.0).contains(&beta) {
            return Err(ParseError::BadRecord {
                line: lineno + 1,
                reason: format!("weights ({alpha}, {beta}) outside [0, 1]"),
            });
        }
        let kws: Vec<String> = fields[3]
            .split(';')
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        for k in &kws {
            space.intern(k);
        }
        records.push((alpha, beta, kws));
    }
    let width = space.len();
    let mut pool = WorkerPool::new();
    for (alpha, beta, kws) in records {
        let ids: Vec<usize> = kws
            .iter()
            .map(|k| space.get(k).expect("interned above").0 as usize)
            .collect();
        pool.push(
            KeywordVec::from_indices(width, &ids),
            Weights::raw(alpha, beta),
        );
    }
    Ok(pool)
}

#[cfg(test)]
mod worker_csv_tests {
    use super::*;
    use crate::vocab::build_vocabulary;
    use crate::workers::{synthetic_workers, SyntheticWorkerConfig};

    #[test]
    fn worker_roundtrip() {
        let space = build_vocabulary(40);
        let workers = synthetic_workers(
            40,
            &SyntheticWorkerConfig {
                n_workers: 7,
                ..Default::default()
            },
        );
        let csv = workers_to_csv(&space, &workers);
        let mut space2 = build_vocabulary(40);
        let pool = workers_from_csv(&mut space2, &csv).unwrap();
        assert_eq!(pool.len(), 7);
        for (a, b) in workers.workers().iter().zip(pool.workers()) {
            assert!((a.weights.alpha() - b.weights.alpha()).abs() < 1e-12);
            assert_eq!(a.keywords.count_ones(), b.keywords.count_ones());
        }
    }

    #[test]
    fn worker_csv_rejects_bad_weights() {
        let mut space = build_vocabulary(5);
        let csv = format!("{WORKER_HEADER}\n0,1.5,0.2,english");
        assert!(workers_from_csv(&mut space, &csv).is_err());
        let csv = format!("{WORKER_HEADER}\n0,x,0.2,english");
        assert!(workers_from_csv(&mut space, &csv).is_err());
    }

    #[test]
    fn worker_csv_interns_new_keywords() {
        let mut space = KeywordSpace::new();
        let csv = format!("{WORKER_HEADER}\n0,0.5,0.5,alpha;beta");
        let pool = workers_from_csv(&mut space, &csv).unwrap();
        assert_eq!(space.len(), 2);
        assert_eq!(pool.get(hta_core::WorkerId(0)).keywords.count_ones(), 2);
    }
}
