//! # hta-datagen — workload generators for the HTA experiments
//!
//! The paper evaluates on two datasets we cannot redistribute:
//!
//! * **152,221 task groups crawled from Amazon Mechanical Turk** (title,
//!   reward, keywords) — used by the offline scalability experiments
//!   (Figures 2–3). [`amt`] generates a statistically similar corpus: task
//!   groups whose keyword sets are drawn Zipf-style from a shared
//!   vocabulary, with all tasks in a group sharing the group's keywords.
//! * **158,018 CrowdFlower micro-tasks across 22 kinds** with ground truth
//!   — used by the live experiment (Figure 5). [`crowdflower`] provides the
//!   22 kinds (tweet classification, sentiment analysis, image
//!   transcription, entity resolution, …) with per-kind keywords, rewards
//!   in $0.01–$0.12, and synthetic ground-truth questions.
//!
//! [`workers`] generates both the paper's synthetic workers (five uniformly
//! chosen keywords, random `(α, β)`) and the richer live-worker profiles
//! used by `hta-crowd`'s behaviour model.
//!
//! [`quality`] grades completed work: the deterministic pass/fail verdict
//! the lifecycle layer (`hta-life`) uses for verification and requeueing.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod amt;
pub mod crowdflower;
pub mod export;
pub mod quality;
pub mod vocab;
pub mod workers;
pub mod zipf;

pub use amt::{AmtConfig, AmtWorkload};
pub use crowdflower::{CrowdflowerCatalog, CrowdflowerConfig, MicroTask, Question, TaskKind};
pub use quality::QualityModel;
pub use workers::{SyntheticWorkerConfig, WeightModel};
pub use zipf::Zipf;
