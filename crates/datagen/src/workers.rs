//! Synthetic worker generation.
//!
//! The paper's offline experiments use synthetic workers: "For each worker
//! w, we use a pseudo-random uniform generator to choose five keywords …
//! for each worker, we pick a random α and β in [0, 1]" (Section V-B).
//! [`synthetic_workers`] reproduces that construction; [`WeightModel`]
//! selects between the paper's independent-uniform weights and
//! simplex-normalized ones.

use hta_core::{KeywordVec, Weights, WorkerPool};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt, SeedableRng};

/// How random motivation weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightModel {
    /// `α, β ~ U[0, 1]` independently — exactly the paper's simulation
    /// set-up (their example weights do not sum to 1 either).
    #[default]
    UniformIndependent,
    /// `α ~ U[0, 1]`, `β = 1 − α` — on the simplex of Eq. 3.
    Simplex,
}

/// Configuration for [`synthetic_workers`].
#[derive(Debug, Clone)]
pub struct SyntheticWorkerConfig {
    /// Number of workers to generate.
    pub n_workers: usize,
    /// Keywords per worker (the paper uses 5).
    pub keywords_per_worker: usize,
    /// How `(α, β)` are drawn.
    pub weight_model: WeightModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticWorkerConfig {
    fn default() -> Self {
        Self {
            n_workers: 200,
            keywords_per_worker: 5,
            weight_model: WeightModel::UniformIndependent,
            seed: 0x30B,
        }
    }
}

/// Generate a pool of synthetic workers over a vocabulary of `vocab_size`
/// keywords. Deterministic in the seed.
pub fn synthetic_workers(vocab_size: usize, cfg: &SyntheticWorkerConfig) -> WorkerPool {
    assert!(
        cfg.keywords_per_worker <= vocab_size,
        "keywords_per_worker exceeds vocabulary"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pool = WorkerPool::new();
    for _ in 0..cfg.n_workers {
        let kws = sample_distinct_uniform(&mut rng, vocab_size, cfg.keywords_per_worker);
        let keywords = KeywordVec::from_indices(vocab_size, &kws);
        let weights = match cfg.weight_model {
            WeightModel::UniformIndependent => Weights::raw(rng.random(), rng.random()),
            WeightModel::Simplex => Weights::from_alpha(rng.random()),
        };
        pool.push(keywords, weights);
    }
    pool
}

/// `k` distinct values from `0..n`, uniformly (partial Fisher–Yates for
/// small `k`, rejection otherwise).
fn sample_distinct_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    if k * 4 >= n {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        all.truncate(k);
        return all;
    }
    let mut out: Vec<usize> = Vec::with_capacity(k);
    while out.len() < k {
        let v = rng.random_range(0..n);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_keywords() {
        let cfg = SyntheticWorkerConfig {
            n_workers: 25,
            keywords_per_worker: 5,
            ..Default::default()
        };
        let pool = synthetic_workers(100, &cfg);
        assert_eq!(pool.len(), 25);
        for w in pool.workers() {
            assert_eq!(w.keywords.count_ones(), 5);
            assert_eq!(w.keywords.nbits(), 100);
        }
    }

    #[test]
    fn uniform_independent_weights_cover_the_square() {
        let cfg = SyntheticWorkerConfig {
            n_workers: 200,
            weight_model: WeightModel::UniformIndependent,
            ..Default::default()
        };
        let pool = synthetic_workers(50, &cfg);
        // With 200 draws, some pair should be far off the simplex.
        let off_simplex = pool
            .workers()
            .iter()
            .filter(|w| (w.weights.alpha() + w.weights.beta() - 1.0).abs() > 0.2)
            .count();
        assert!(off_simplex > 10);
    }

    #[test]
    fn simplex_weights_sum_to_one() {
        let cfg = SyntheticWorkerConfig {
            n_workers: 50,
            weight_model: WeightModel::Simplex,
            ..Default::default()
        };
        let pool = synthetic_workers(50, &cfg);
        for w in pool.workers() {
            assert!((w.weights.alpha() + w.weights.beta() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticWorkerConfig::default();
        let a = synthetic_workers(60, &cfg);
        let b = synthetic_workers(60, &cfg);
        for (x, y) in a.workers().iter().zip(b.workers()) {
            assert_eq!(x.keywords, y.keywords);
            assert_eq!(x.weights.alpha(), y.weights.alpha());
        }
    }

    #[test]
    fn dense_k_uses_shuffle_path() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_distinct_uniform(&mut rng, 10, 8);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(s.iter().all(|&v| v < 10));
    }
}
