//! AMT-like task-group corpus generator.
//!
//! Substitutes the paper's crawl of 152,221 AMT task groups (DESIGN.md §4).
//! The offline experiments consume `#groups × #tasks-per-group = |T|` tasks
//! whose keyword vectors carry the group structure: all tasks in a group
//! share the group's keyword set (AMT groups list one metadata block for
//! every HIT inside). The paper's Figure 3 sweeps the number of groups at a
//! fixed `|T|` — with few groups the pairwise diversity matrix is highly
//! degenerate, with many groups it is diverse; this generator reproduces
//! exactly that spectrum.

use hta_core::{GroupId, KeywordSpace, KeywordVec, TaskPool};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::vocab::build_vocabulary;
use crate::zipf::Zipf;

/// Configuration of the AMT-like corpus.
#[derive(Debug, Clone)]
pub struct AmtConfig {
    /// Number of task groups.
    pub n_groups: usize,
    /// Tasks per group (`|T| = n_groups × tasks_per_group`).
    pub tasks_per_group: usize,
    /// Vocabulary size (the paper's crawl has a long-tailed keyword set).
    pub vocab_size: usize,
    /// Inclusive range of keywords attached to one group.
    pub keywords_per_group: (usize, usize),
    /// Zipf exponent of keyword popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// RNG seed; every run with the same config is identical.
    pub seed: u64,
}

impl Default for AmtConfig {
    fn default() -> Self {
        Self {
            n_groups: 200,
            tasks_per_group: 20,
            vocab_size: 500,
            keywords_per_group: (3, 6),
            zipf_exponent: 1.05,
            seed: 0xA37,
        }
    }
}

impl AmtConfig {
    /// Convenience: a corpus of exactly `n_tasks` split over `n_groups`
    /// groups (the paper's sweeps fix one and vary the other). Rounds
    /// `tasks_per_group` up so at least `n_tasks` are generated, then the
    /// pool is truncated to exactly `n_tasks`.
    pub fn with_totals(n_tasks: usize, n_groups: usize) -> Self {
        let tasks_per_group = n_tasks.div_ceil(n_groups.max(1));
        Self {
            n_groups: n_groups.max(1),
            tasks_per_group,
            ..Self::default()
        }
    }
}

/// A generated corpus: the keyword universe plus the task pool.
#[derive(Debug)]
pub struct AmtWorkload {
    /// The keyword universe the tasks are defined over.
    pub space: KeywordSpace,
    /// The generated tasks.
    pub tasks: TaskPool,
}

/// Generate a corpus. Deterministic in `cfg.seed`.
pub fn generate(cfg: &AmtConfig) -> AmtWorkload {
    generate_exact(cfg, cfg.n_groups * cfg.tasks_per_group)
}

/// Generate and truncate to exactly `n_tasks` tasks.
pub fn generate_exact(cfg: &AmtConfig, n_tasks: usize) -> AmtWorkload {
    assert!(cfg.vocab_size > 0, "vocabulary must be non-empty");
    let (kmin, kmax) = cfg.keywords_per_group;
    assert!(kmin >= 1 && kmin <= kmax, "bad keywords_per_group range");
    assert!(
        kmax <= cfg.vocab_size,
        "keywords_per_group exceeds vocabulary"
    );
    let space = build_vocabulary(cfg.vocab_size);
    let zipf = Zipf::new(cfg.vocab_size, cfg.zipf_exponent);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tasks = TaskPool::new();

    'groups: for g in 0..cfg.n_groups {
        let k = rng.random_range(kmin..=kmax);
        let kws = zipf.sample_distinct(&mut rng, k);
        let vec = KeywordVec::from_indices(cfg.vocab_size, &kws);
        for _ in 0..cfg.tasks_per_group {
            if tasks.len() == n_tasks {
                break 'groups;
            }
            // Micro-task rewards < $0.15 (Section II).
            let reward = rng.random_range(1..=14);
            let task = hta_core::Task::new(
                hta_core::TaskId(0), // reassigned by the pool
                GroupId(g as u32),
                vec.clone(),
            )
            .with_reward_cents(reward);
            tasks.push_task(task);
        }
    }
    AmtWorkload { space, tasks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = AmtConfig {
            n_groups: 10,
            tasks_per_group: 5,
            vocab_size: 50,
            ..AmtConfig::default()
        };
        let w = generate(&cfg);
        assert_eq!(w.tasks.len(), 50);
        assert_eq!(w.tasks.group_count(), 10);
        assert_eq!(w.space.len(), 50);
    }

    #[test]
    fn tasks_within_group_share_keywords() {
        let cfg = AmtConfig {
            n_groups: 3,
            tasks_per_group: 4,
            vocab_size: 40,
            ..AmtConfig::default()
        };
        let w = generate(&cfg);
        for g in 0..3u32 {
            let group_tasks: Vec<_> = w
                .tasks
                .tasks()
                .iter()
                .filter(|t| t.group == GroupId(g))
                .collect();
            assert_eq!(group_tasks.len(), 4);
            for t in &group_tasks[1..] {
                assert_eq!(t.keywords, group_tasks[0].keywords);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = AmtConfig::default();
        let a = generate_exact(&cfg, 100);
        let b = generate_exact(&cfg, 100);
        for (ta, tb) in a.tasks.tasks().iter().zip(b.tasks.tasks()) {
            assert_eq!(ta.keywords, tb.keywords);
        }
    }

    #[test]
    fn with_totals_produces_exact_task_count() {
        let cfg = AmtConfig::with_totals(103, 10);
        let w = generate_exact(&cfg, 103);
        assert_eq!(w.tasks.len(), 103);
    }

    #[test]
    fn single_group_is_fully_degenerate() {
        let cfg = AmtConfig::with_totals(20, 1);
        let w = generate_exact(&cfg, 20);
        assert_eq!(w.tasks.group_count(), 1);
        let first = &w.tasks.tasks()[0].keywords;
        assert!(w.tasks.tasks().iter().all(|t| &t.keywords == first));
    }

    #[test]
    fn keyword_counts_respect_range() {
        let cfg = AmtConfig {
            n_groups: 50,
            tasks_per_group: 1,
            vocab_size: 100,
            keywords_per_group: (2, 4),
            ..AmtConfig::default()
        };
        let w = generate(&cfg);
        for t in w.tasks.tasks() {
            let k = t.keywords.count_ones();
            assert!((2..=4).contains(&k), "got {k} keywords");
        }
    }
}
