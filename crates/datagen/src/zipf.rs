//! A seeded Zipf sampler (rank-frequency `1/rank^s`).
//!
//! Real AMT keyword usage is heavily skewed ("English", "survey", "data
//! collection" dominate); the AMT generator draws group keywords through
//! this distribution so that few keywords are common and many are rare —
//! the property that makes task groups overlap realistically.

use rand::{Rng, RngExt};

/// Zipf distribution over ranks `0..n` with exponent `s ≥ 0`
/// (`s = 0` degenerates to uniform). Sampling is `O(log n)` via binary
/// search on the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point: the last entry must be exactly 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draw `k` *distinct* ranks (by rejection; `k` must not exceed `n`).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(k <= self.n(), "cannot draw {k} distinct from {}", self.n());
        let mut out = Vec::with_capacity(k);
        // Rejection is fast while k ≪ n; fall back to a shuffled sweep when
        // rejection starts thrashing.
        let mut misses = 0usize;
        while out.len() < k {
            let r = self.sample(rng);
            if out.contains(&r) {
                misses += 1;
                if misses > 16 * k + 64 {
                    // Dense fallback: take the remaining lowest ranks.
                    for rank in 0..self.n() {
                        if out.len() == k {
                            break;
                        }
                        if !out.contains(&rank) {
                            out.push(rank);
                        }
                    }
                    break;
                }
            } else {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_positive() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 should dominate clearly.
        assert!(counts[0] as f64 > 0.1 * 50_000.0);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn distinct_sampling() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let s = z.sample_distinct(&mut rng, 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn distinct_sampling_extreme_skew_terminates() {
        // s = 5: almost all mass on rank 0 — forces the dense fallback.
        let z = Zipf::new(50, 5.0);
        let mut rng = StdRng::seed_from_u64(5);
        let s = z.sample_distinct(&mut rng, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(30, 1.1);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
