//! # hta-par — std-only deterministic chunked parallelism
//!
//! The dependency policy keeps the workspace free of thread-pool crates, so
//! every parallel stage (bulk index construction, diversity-edge
//! enumeration, profit-matrix materialization, the big sorts) leans on
//! `std::thread::scope` with contiguous chunking. Results are collected
//! **in chunk order**, so every helper is deterministic regardless of how
//! the OS interleaves the threads: running with 1, 2, or 64 threads
//! produces byte-identical output.
//!
//! These helpers started life inside `hta-index` (the sharded-index bulk
//! build); they were hoisted into this base crate once `hta-core` and
//! `hta-matching` needed the same pattern for the solver pipeline.
//! `hta_index::par` re-exports everything here for compatibility.

#![warn(missing_docs)]

use std::cmp::Ordering;

/// Split `items` into at most `threads` contiguous chunks, apply `f` to each
/// chunk on its own scoped thread, and return the results in chunk order.
///
/// With `threads <= 1` or fewer items than threads this degrades to a plain
/// sequential map over one chunk per item bucket — no threads are spawned
/// for a single chunk.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    let chunk_size = items.len().div_ceil(threads);
    if threads == 1 || chunk_size == 0 {
        return if items.is_empty() {
            Vec::new()
        } else {
            vec![f(items)]
        };
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len().div_ceil(chunk_size), || None);
    std::thread::scope(|scope| {
        for (slot, chunk) in out.iter_mut().zip(items.chunks(chunk_size)) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(chunk));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("chunk completed"))
        .collect()
}

/// Apply `f(index, item) -> R` to every item using at most `threads` scoped
/// threads, returning results in item order. `index` is the item's position
/// in `items`, so callers can key side tables without sharing state.
pub fn map_items<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let base: Vec<usize> = {
        let mut offsets = Vec::new();
        let threads = threads.clamp(1, items.len().max(1));
        let chunk_size = items.len().div_ceil(threads);
        let mut start = 0;
        while start < items.len() {
            offsets.push(start);
            start += chunk_size.max(1);
        }
        offsets
    };
    let chunked = map_chunks(items, threads, |chunk| {
        // Recover the chunk's base offset from pointer arithmetic: chunks
        // are contiguous slices of `items`.
        let offset = (chunk.as_ptr() as usize - items.as_ptr() as usize) / std::mem::size_of::<T>();
        chunk
            .iter()
            .enumerate()
            .map(|(i, item)| f(offset + i, item))
            .collect::<Vec<R>>()
    });
    debug_assert_eq!(chunked.len(), base.len());
    chunked.into_iter().flatten().collect()
}

/// Sort `items` with `cmp` using per-chunk parallel sorts followed by a
/// chunk-order-stable k-way merge (the merge prefers the lowest-index chunk
/// on `Ordering::Equal`).
///
/// **Determinism contract:** when `cmp` is a total order under which no two
/// items compare equal (every caller in this workspace tie-breaks on a
/// unique key such as `(u, v)` or `(row, col)`), the sorted sequence is
/// unique, so the result is byte-identical to sequential `sort_unstable_by`
/// at any thread count — which is what the solver pipeline's determinism
/// relies on. With genuinely equal items the result is still deterministic
/// for a fixed thread count, but equal items may order differently across
/// thread counts (the per-chunk sorts are unstable).
pub fn sort_unstable_by_parallel<T, F>(items: &mut [T], threads: usize, cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        items.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let chunk_size = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk in items.chunks_mut(chunk_size) {
            let cmp = &cmp;
            scope.spawn(move || chunk.sort_unstable_by(|a, b| cmp(a, b)));
        }
    });
    let merged = {
        let runs: Vec<&[T]> = items.chunks(chunk_size).collect();
        let mut pos = vec![0usize; runs.len()];
        let mut out = Vec::with_capacity(items.len());
        loop {
            let mut best: Option<usize> = None;
            for (ri, run) in runs.iter().enumerate() {
                if pos[ri] >= run.len() {
                    continue;
                }
                best = match best {
                    None => Some(ri),
                    Some(b) if cmp(&run[pos[ri]], &runs[b][pos[b]]) == Ordering::Less => Some(ri),
                    keep => keep,
                };
            }
            let Some(b) = best else { break };
            out.push(runs[b][pos[b]]);
            pos[b] += 1;
        }
        out
    };
    items.copy_from_slice(&merged);
}

/// A reasonable default thread count for this process: `available_parallelism`
/// capped at 8 (the chunked helpers stop scaling well beyond that for the
/// sizes this workspace handles).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Resolve the solver-pipeline thread count: a positive `requested` wins
/// unconditionally, otherwise the `HTA_SOLVER_THREADS` environment variable
/// (when set to a positive integer), otherwise [`default_threads`]. This is
/// the single knob behind `--solver-threads` on the CLI and the
/// platform/server configuration (`0` = auto everywhere).
///
/// Both auto paths are clamped to `available_parallelism()`: an inherited
/// `HTA_SOLVER_THREADS=16` on a 1-vCPU box would otherwise oversubscribe
/// the solver pool sixteenfold for zero throughput. An explicit CLI/config
/// request is taken at face value — oversubscription on purpose is a valid
/// benchmark scenario, and solver output is byte-identical at any thread
/// count anyway.
pub fn solver_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    std::env::var("HTA_SOLVER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(hw))
        .unwrap_or_else(default_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1usize, 2, 3, 7, 16] {
            let sums = map_chunks(&items, threads, |chunk| chunk.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), 499_500, "threads={threads}");
            // Chunk order == slice order: first chunk holds the smallest ids.
            if sums.len() > 1 {
                assert!(sums[0] < *sums.last().unwrap(), "threads={threads}");
            }
        }
    }

    #[test]
    fn map_chunks_handles_edges() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_chunks(&empty, 4, |c| c.len()).is_empty());
        assert_eq!(map_chunks(&[5u32], 4, |c| c.len()), vec![1]);
    }

    #[test]
    fn map_items_passes_global_indices() {
        let items: Vec<u32> = (0..97).map(|i| i * 2).collect();
        for threads in [1usize, 4, 32] {
            let got = map_items(&items, threads, |i, &v| (i, v));
            assert_eq!(got.len(), items.len(), "threads={threads}");
            for (i, &(gi, gv)) in got.iter().enumerate() {
                assert_eq!(gi, i);
                assert_eq!(gv, items[i]);
            }
        }
    }

    #[test]
    fn parallel_sort_matches_sequential_on_unique_keys() {
        // Pseudo-random distinct keys (xorshift) sorted descending.
        let mut x = 0x9E3779B97F4A7C15u64;
        let items: Vec<u64> = (0..2000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x ^ i // distinct by construction of the low bits
            })
            .collect();
        let mut expect = items.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        for threads in [1usize, 2, 3, 7, 16] {
            let mut got = items.clone();
            sort_unstable_by_parallel(&mut got, threads, |a, b| b.cmp(a));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sort_with_tie_broken_keys_is_thread_invariant() {
        // Heavy ties on the primary key, broken by the unique payload —
        // the shape every solver-pipeline sort has.
        let items: Vec<(u32, u32)> = (0..500).map(|i| ((i * 7) % 4, i)).collect();
        let mut expect = items.clone();
        expect.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        for threads in [2usize, 5, 9, 16] {
            let mut got = items.clone();
            sort_unstable_by_parallel(&mut got, threads, |a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sort_on_pure_ties_is_sorted_and_a_permutation() {
        let items: Vec<(u32, u32)> = (0..100).map(|i| (i % 4, i)).collect();
        for threads in [2usize, 5, 9] {
            let mut got = items.clone();
            sort_unstable_by_parallel(&mut got, threads, |a, b| a.0.cmp(&b.0));
            assert!(
                got.windows(2).all(|w| w[0].0 <= w[1].0),
                "threads={threads}"
            );
            let mut payloads: Vec<u32> = got.iter().map(|x| x.1).collect();
            payloads.sort_unstable();
            assert_eq!(payloads, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_sort_handles_edges() {
        let mut empty: Vec<u32> = Vec::new();
        sort_unstable_by_parallel(&mut empty, 4, |a, b| a.cmp(b));
        assert!(empty.is_empty());
        let mut one = vec![3u32];
        sort_unstable_by_parallel(&mut one, 4, |a, b| a.cmp(b));
        assert_eq!(one, vec![3]);
    }

    #[test]
    fn solver_threads_resolution_order() {
        // Positive request wins unconditionally — even past the hardware
        // parallelism (deliberate oversubscription stays possible).
        assert_eq!(solver_threads(3), 3);
        assert_eq!(solver_threads(1024), 1024);
        // 0 = auto: env or the hardware default, clamped to the machine.
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let auto = solver_threads(0);
        assert!((1..=hw.max(8)).contains(&auto));
        if std::env::var("HTA_SOLVER_THREADS").is_err() {
            assert!(auto <= hw.min(8), "auto default exceeds the machine");
        }
    }
}
