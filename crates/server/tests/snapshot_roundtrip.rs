//! Integration tests for the `/stats` shard accounting and the
//! snapshot/restore cycle, driven end-to-end through the HTTP service
//! layer (`handle`), exactly as a TCP client would exercise it.

use std::path::PathBuf;

use hta_datagen::amt::{generate, AmtConfig};
use hta_index::CandidateMode;
use hta_server::http::{parse_query, Request};
use hta_server::service::handle;
use hta_server::PlatformState;

fn state(shards: usize) -> PlatformState {
    let w = generate(&AmtConfig {
        n_groups: 8,
        tasks_per_group: 5,
        vocab_size: 60,
        ..Default::default()
    });
    PlatformState::with_options(w.space, w.tasks, 5, 42, CandidateMode::default(), shards, 1)
}

fn req(method: &str, path: &str, query: &str) -> Request {
    Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query: parse_query(query),
    }
}

/// Pull a JSON array field like `"shards":[3,1,4]` out of a `/stats` body.
fn json_array(body: &str, key: &str) -> Vec<usize> {
    let tail = body
        .split(&format!("\"{key}\":["))
        .nth(1)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"));
    let inner = tail.split(']').next().unwrap();
    if inner.is_empty() {
        return Vec::new();
    }
    inner.split(',').map(|n| n.parse().unwrap()).collect()
}

/// Pull a JSON number field like `"open_tasks":35` out of a body.
fn json_number(body: &str, key: &str) -> usize {
    body.split(&format!("\"{key}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"))
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

fn shard_sizes(s: &PlatformState) -> Vec<usize> {
    json_array(&handle(s, &req("GET", "/stats", "")).body, "shards")
}

/// Keyword count of a catalog task, via the public `/tasks` endpoint. Each
/// open task contributes exactly one posting per keyword, so removing it
/// from the index must shrink the shard-size total by this amount.
fn keyword_count(s: &PlatformState, task: usize) -> usize {
    let body = handle(s, &req("GET", "/tasks", &format!("id={task}"))).body;
    let inner = body.split('[').nth(1).unwrap().split(']').next().unwrap();
    inner.split("\",\"").count()
}

fn assigned_tasks(body: &str) -> Vec<usize> {
    json_array(body, "tasks")
}

/// Satellite: per-shard sizes stay an exact posting-count accounting of the
/// open set as tasks are incrementally removed (assignment) while the
/// keyword universe widens (registration of unseen keywords).
#[test]
fn stats_shard_sizes_track_the_task_lifecycle() {
    let s = state(3);
    let initial = shard_sizes(&s);
    assert_eq!(initial.len(), 3, "one entry per shard");
    let total: usize = initial.iter().sum();
    let expected: usize = (0..40).map(|t| keyword_count(&s, t)).sum();
    assert_eq!(total, expected, "initial postings = sum of task keywords");

    // Registering a worker with brand-new keywords widens the keyword
    // universe; the new posting lists are empty, so sizes are unchanged.
    let r = handle(
        &s,
        &req("POST", "/register", "keywords=english;never-seen-before"),
    );
    assert_eq!(r.status, 200);
    assert_eq!(shard_sizes(&s), initial, "widening adds no postings");

    // Draining the pool: every assignment removes exactly the assigned
    // tasks' postings, spread over the owning shards.
    let mut running = total;
    loop {
        let before = shard_sizes(&s);
        let body = handle(&s, &req("POST", "/assign", "worker=0")).body;
        let tasks = assigned_tasks(&body);
        if tasks.is_empty() {
            break;
        }
        let removed: usize = tasks.iter().map(|&t| keyword_count(&s, t)).sum();
        let after = shard_sizes(&s);
        assert_eq!(after.len(), 3);
        assert!(
            before.iter().zip(&after).all(|(b, a)| a <= b),
            "no shard may grow on removal: {before:?} -> {after:?}"
        );
        running -= removed;
        assert_eq!(after.iter().sum::<usize>(), running, "posting accounting");

        // Completions touch the ledger, not the index.
        let done = handle(
            &s,
            &req("POST", "/complete", &format!("worker=0&task={}", tasks[0])),
        );
        assert_eq!(done.status, 200);
        assert_eq!(shard_sizes(&s), after, "complete leaves shards alone");
    }
    let stats = handle(&s, &req("GET", "/stats", "")).body;
    assert_eq!(json_number(&stats, "open_tasks"), 0);
    assert_eq!(json_number(&stats, "indexed_tasks"), 0);
    assert_eq!(shard_sizes(&s), vec![0, 0, 0], "drained pool, empty shards");
}

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hta-server-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Satellite: `POST /snapshot` then restore reproduces `/stats` verbatim —
/// per-shard sizes included — and the restored server's future request
/// stream is identical to the original's.
#[test]
fn restore_then_stats_round_trip() {
    let s = state(4);
    for kws in ["english;survey", "audio;transcription"] {
        let r = handle(&s, &req("POST", "/register", &format!("keywords={kws}")));
        assert_eq!(r.status, 200);
    }
    for worker in [0usize, 1] {
        let body = handle(&s, &req("POST", "/assign", &format!("worker={worker}"))).body;
        let first = assigned_tasks(&body)[0];
        let done = handle(
            &s,
            &req(
                "POST",
                "/complete",
                &format!("worker={worker}&task={first}"),
            ),
        );
        assert_eq!(done.status, 200);
    }

    let path = scratch_file("roundtrip.htasnap");
    let saved = handle(
        &s,
        &req("POST", "/snapshot", &format!("path={}", path.display())),
    );
    assert_eq!(saved.status, 200, "{}", saved.body);

    let restored = PlatformState::restore(&path).expect("restore");
    let stats_orig = handle(&s, &req("GET", "/stats", "")).body;
    let stats_back = handle(&restored, &req("GET", "/stats", "")).body;
    assert_eq!(stats_back, stats_orig, "restored /stats diverged");
    assert_eq!(shard_sizes(&restored).len(), 4);

    // Both servers now serve the same futures: same assignment (estimator,
    // index order, and RNG stream all survived), same follow-up stats.
    for worker in [1usize, 0] {
        let a = handle(&s, &req("POST", "/assign", &format!("worker={worker}"))).body;
        let b = handle(
            &restored,
            &req("POST", "/assign", &format!("worker={worker}")),
        )
        .body;
        assert_eq!(a, b, "worker {worker} assignment diverged after restore");
    }
    assert_eq!(
        handle(&restored, &req("GET", "/stats", "")).body,
        handle(&s, &req("GET", "/stats", "")).body
    );
    std::fs::remove_file(&path).ok();
}

/// A corrupted snapshot file is rejected by `--restore`'s loading path with
/// a checksum error; it never yields a half-restored server.
#[test]
fn corrupted_snapshot_file_is_rejected() {
    let s = state(2);
    let _ = handle(&s, &req("POST", "/register", "keywords=english"));
    let _ = handle(&s, &req("POST", "/assign", "worker=0"));
    let path = scratch_file("corrupt.htasnap");
    assert_eq!(
        handle(
            &s,
            &req("POST", "/snapshot", &format!("path={}", path.display()))
        )
        .status,
        200
    );

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let msg = match PlatformState::restore(&path) {
        Ok(_) => panic!("corrupt file accepted"),
        Err(e) => e.to_string(),
    };
    assert!(
        msg.contains("checksum") || msg.contains("corrupt") || msg.contains("truncated"),
        "unhelpful error: {msg}"
    );
    std::fs::remove_file(&path).ok();
}
