//! Property tests for the batch assignment endpoint's state semantics.
//!
//! Two contracts:
//! 1. **Sequential equivalence** — `assign_batch_sequential` over a cohort
//!    is *byte-identical* (full snapshot bytes: ledger, estimators, index,
//!    RNG stream) to issuing the same `assign` calls one by one. The HTTP
//!    `/assign_batch?mode=seq` path is therefore a pure transport-level
//!    batching of `/assign`.
//! 2. **Cohort solve invariants** — the one-pool-one-solve batch path is
//!    deterministic under a fixed seed, keeps per-worker task sets
//!    disjoint (solver constraint C2), and leaves the ledger and keyword
//!    index consistent.

use hta_datagen::amt::{generate, AmtConfig};
use hta_server::PlatformState;
use proptest::prelude::*;

/// A fresh platform with `n_workers` registered from a rotating keyword
/// menu, so cohorts mix relevance profiles.
fn platform(seed: u64, n_workers: usize) -> PlatformState {
    let w = generate(&AmtConfig {
        n_groups: 12,
        tasks_per_group: 8,
        vocab_size: 60,
        ..Default::default()
    });
    let s = PlatformState::new(w.space, w.tasks, 4, seed);
    const MENU: [&[&str]; 4] = [
        &["english", "survey"],
        &["english", "audio"],
        &["image", "tagging"],
        &["sentiment", "english", "tweets"],
    ];
    for i in 0..n_workers {
        s.register_worker(MENU[i % MENU.len()]).unwrap();
    }
    s
}

proptest! {
    /// `assign_batch_sequential` ≡ the same `assign` calls in order, down
    /// to the serialized snapshot bytes (same ledger, same estimator
    /// state, same RNG stream position).
    #[test]
    fn sequential_batch_is_byte_identical_to_singleton_assigns(
        seed in 0u64..1_000,
        cohort in proptest::collection::vec(0usize..4, 1..6),
    ) {
        let batched = platform(seed, 4);
        let rs_batch = batched.assign_batch_sequential(&cohort).unwrap();

        let singles = platform(seed, 4);
        let rs_single: Vec<_> = cohort
            .iter()
            .map(|&w| singles.assign(w).unwrap())
            .collect();

        prop_assert_eq!(rs_batch, rs_single);
        prop_assert_eq!(batched.snapshot_bytes(), singles.snapshot_bytes());
    }

    /// The cohort solve is deterministic, disjoint, and bookkept.
    #[test]
    fn cohort_batch_is_deterministic_and_disjoint(
        seed in 0u64..1_000,
        cohort in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let a = platform(seed, 4);
        let rs_a = a.assign_batch(&cohort).unwrap();
        let b = platform(seed, 4);
        let rs_b = b.assign_batch(&cohort).unwrap();
        prop_assert_eq!(&rs_a, &rs_b, "same seed, same cohort, same result");
        prop_assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());

        // Disjointness across the whole cohort (C2), even with repeats.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for r in &rs_a {
            for &t in &r.tasks {
                prop_assert!(seen.insert(t), "task {} assigned twice", t);
                total += 1;
            }
        }
        let st = a.stats();
        prop_assert_eq!(st.assigned_tasks, total);
        prop_assert_eq!(st.open_tasks, 96 - total);
        prop_assert_eq!(st.indexed_tasks, st.open_tasks, "index in sync");
    }

    /// Batch-then-complete keeps the adaptive loop functional: every task
    /// the batch handed out is completable exactly once.
    #[test]
    fn batched_tasks_are_completable(
        seed in 0u64..1_000,
        cohort_len in 1usize..5,
    ) {
        let cohort: Vec<usize> = (0..cohort_len).collect();
        let s = platform(seed, cohort_len);
        let rs = s.assign_batch(&cohort).unwrap();
        for (w, r) in cohort.iter().zip(&rs) {
            for &t in &r.tasks {
                let c = s.complete(*w, t).unwrap();
                prop_assert!((c.alpha + c.beta - 1.0).abs() < 1e-9);
            }
            // A second completion of the same task must be rejected.
            if let Some(&t) = r.tasks.first() {
                prop_assert!(s.complete(*w, t).is_err());
            }
        }
        prop_assert_eq!(s.stats().assigned_tasks, 0);
    }
}
