//! Cluster identity: a primary with read replicas and shard workers must
//! behave byte-identically to one single-process server fed the same
//! request stream — same response bodies, same final snapshot bytes — and
//! a follower that disappears mid-run must catch back up to byte-identical
//! state from its journal plus the primary's delta chain.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hta_cluster::{Follower, ReplicaState, ReplicationHub, ShardSpec, DEFAULT_RETAIN};
use hta_datagen::amt::{generate, AmtConfig};
use hta_net::client;
use hta_server::cluster::{
    acquire_initial_state, install_shard_coordinator, spawn_follower, AppliedEpoch, ClusterCtx,
};
use hta_server::{PlatformState, ServeOptions, Server};

fn fresh_state(seed: u64) -> PlatformState {
    let w = generate(&AmtConfig {
        n_groups: 12,
        tasks_per_group: 6,
        vocab_size: 60,
        ..Default::default()
    });
    PlatformState::new(w.space, w.tasks, 4, seed)
}

/// One request over a fresh connection; returns (status, body, location).
fn call(addr: &str, method: &str, target: &str) -> (u16, String, Option<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&client::request_bytes(method, target, false))
        .expect("write");
    let mut reader = BufReader::new(stream);
    let resp = client::read_response(&mut reader).expect("response");
    let location = resp.header("location").map(str::to_owned);
    (resp.status, resp.body_text(), location)
}

/// Like [`call`] but follows one `307` hop (the replica → primary bounce).
fn call_following(addr: &str, method: &str, target: &str) -> (u16, String) {
    let (status, body, location) = call(addr, method, target);
    if status != 307 {
        return (status, body);
    }
    let url = location.expect("307 without a Location header");
    let rest = url.strip_prefix("http://").expect("absolute redirect");
    let (next_addr, path) = rest.split_once('/').expect("redirect path");
    let (status, body, _) = call(next_addr, method, &format!("/{path}"));
    (status, body)
}

/// Poll a node's `GET /cluster` until it reports `epoch` (or panic).
fn wait_for_epoch(addr: &str, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body, _) = call(addr, "GET", "/cluster");
        assert_eq!(status, 200, "{body}");
        let at: u64 = body
            .split("\"epoch\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .expect("epoch in /cluster body");
        if at >= epoch {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "node {addr} stuck at epoch {at}, want {epoch}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn snapshot_via_http(addr: &str, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("hta-cluster-id-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.htasnap"));
    let (status, body, _) = call(addr, "POST", &format!("/snapshot?path={}", path.display()));
    assert_eq!(status, 200, "{body}");
    std::fs::read(&path).expect("snapshot file")
}

/// A primary node plus the hub its followers attach to.
struct Primary {
    server: Server,
    state: Arc<PlatformState>,
    hub: Arc<ReplicationHub>,
    repl_addr: String,
}

fn spawn_primary(seed: u64) -> Primary {
    let state = Arc::new(fresh_state(seed));
    let hub = Arc::new(ReplicationHub::new(DEFAULT_RETAIN));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let repl_addr = listener.local_addr().unwrap().to_string();
    hub.publish(state.snapshot_bytes());
    {
        let hub = Arc::clone(&hub);
        std::thread::spawn(move || hub.serve(listener));
    }
    let ctx = Arc::new(ClusterCtx::primary(Arc::clone(&hub)));
    let server = Server::spawn_with_cluster(
        "127.0.0.1:0",
        Arc::clone(&state),
        ServeOptions::default(),
        Some(ctx),
    )
    .unwrap();
    Primary {
        server,
        state,
        hub,
        repl_addr,
    }
}

/// Attach a follower (replica or shard worker) to a primary.
fn spawn_follower_node(primary: &Primary, shard: Option<ShardSpec>) -> Server {
    let mut rstate = ReplicaState::empty();
    let state = Arc::new(
        acquire_initial_state(&primary.repl_addr, &mut rstate, Duration::from_secs(10))
            .expect("initial state"),
    );
    let applied = Arc::new(AppliedEpoch::new());
    applied.set(rstate.epoch);
    spawn_follower(
        primary.repl_addr.clone(),
        rstate,
        Arc::clone(&state),
        Arc::clone(&applied),
    );
    let primary_http = primary.server.addr().to_string();
    let ctx = match shard {
        None => ClusterCtx::replica(primary_http, applied),
        Some(spec) => ClusterCtx::shard_worker(primary_http, applied, spec),
    };
    Server::spawn_with_cluster(
        "127.0.0.1:0",
        state,
        ServeOptions::default(),
        Some(Arc::new(ctx)),
    )
    .unwrap()
}

/// The request script both deployments replay: registrations, singleton
/// and batch assignments, completions (some failed). Returns each step's
/// `(status, body)` so the two runs can be compared element-wise.
fn drive(mut post: impl FnMut(&str) -> (u16, String)) -> Vec<(u16, String)> {
    let mut out = Vec::new();
    for kw in [
        "english;survey",
        "english;audio",
        "spanish;survey",
        "english;video",
    ] {
        out.push(post(&format!("/register?keywords={kw}")));
    }
    for worker in 0..4 {
        out.push(post(&format!("/assign?worker={worker}")));
    }
    // Complete the first task of each assignment (worker 3's fails
    // verification) by parsing it out of the assign response.
    for worker in 0..4 {
        let body = &out[4 + worker].1;
        let first: usize = body
            .split('[')
            .nth(1)
            .unwrap()
            .split([',', ']'])
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let ok = if worker == 3 { "&ok=false" } else { "" };
        out.push(post(&format!("/complete?worker={worker}&task={first}{ok}")));
    }
    out.push(post("/assign_batch?workers=0,2"));
    out.push(post("/assign?worker=1"));
    out
}

const SEED: u64 = 0x1D7;

#[test]
fn replicated_run_matches_single_process_byte_for_byte() {
    // Reference: one single-process server, no cluster machinery.
    let single_state = Arc::new(fresh_state(SEED));
    let single = Server::spawn("127.0.0.1:0", Arc::clone(&single_state)).unwrap();
    let single_addr = single.addr().to_string();
    let expected = drive(|target| {
        let (status, body, _) = call(&single_addr, "POST", target);
        (status, body)
    });

    // Cluster: primary + 2 replicas; writes go to a *replica* and follow
    // the 307 bounce, so the redirect path itself is under test.
    let primary = spawn_primary(SEED);
    let replicas = [
        spawn_follower_node(&primary, None),
        spawn_follower_node(&primary, None),
    ];
    let replica_addrs: Vec<String> = replicas.iter().map(|r| r.addr().to_string()).collect();
    let mut step = 0usize;
    let got = drive(|target| {
        // Alternate entry replica per step.
        let entry = &replica_addrs[step % replica_addrs.len()];
        step += 1;
        call_following(entry, "POST", target)
    });
    assert_eq!(expected.len(), got.len());
    for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(want, have, "step {i} diverged");
    }

    // A replica-issued write really was a redirect with a usable target.
    let (status, body, location) = call(&replica_addrs[0], "POST", "/assign?worker=0");
    assert_eq!(status, 307, "{body}");
    let loc = location.expect("Location header");
    assert!(
        loc.starts_with(&format!("http://{}/assign?", primary.server.addr())),
        "{loc}"
    );

    // Every node converges to the primary's epoch and to byte-identical
    // serving state — including the single-process reference.
    let head = primary.hub.epoch();
    for addr in &replica_addrs {
        wait_for_epoch(addr, head);
    }
    let single_bytes = snapshot_via_http(&single_addr, "single");
    let primary_bytes = snapshot_via_http(&primary.server.addr().to_string(), "primary");
    assert_eq!(single_bytes, primary_bytes, "primary diverged from single");
    for (i, addr) in replica_addrs.iter().enumerate() {
        let bytes = snapshot_via_http(addr, &format!("replica{i}"));
        assert_eq!(bytes, primary_bytes, "replica {i} diverged");
    }

    single.shutdown();
    for r in replicas {
        r.shutdown();
    }
    primary.server.shutdown();
}

#[test]
fn sharded_retrieval_run_matches_single_process_byte_for_byte() {
    let single_state = Arc::new(fresh_state(SEED));
    let single = Server::spawn("127.0.0.1:0", Arc::clone(&single_state)).unwrap();
    let single_addr = single.addr().to_string();
    let expected = drive(|target| {
        let (status, body, _) = call(&single_addr, "POST", target);
        (status, body)
    });

    // Primary + 2 shard workers; the joint solve runs on the primary over
    // candidate pools merged from the shards' exact top-k lists.
    let primary = spawn_primary(SEED);
    let shards = [
        spawn_follower_node(&primary, Some(ShardSpec::new(0, 2))),
        spawn_follower_node(&primary, Some(ShardSpec::new(1, 2))),
    ];
    install_shard_coordinator(
        &primary.state,
        Arc::clone(&primary.hub),
        shards.iter().map(|s| s.addr().to_string()).collect(),
    );

    let primary_addr = primary.server.addr().to_string();
    let got = drive(|target| {
        let (status, body, _) = call(&primary_addr, "POST", target);
        (status, body)
    });
    assert_eq!(expected.len(), got.len());
    for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(want, have, "step {i} diverged under sharded retrieval");
    }
    let single_bytes = snapshot_via_http(&single_addr, "shard-single");
    let primary_bytes = snapshot_via_http(&primary_addr, "shard-primary");
    assert_eq!(single_bytes, primary_bytes, "sharded state diverged");

    // Guard against vacuous success: identity also holds when the
    // coordinator falls back to local retrieval, so check the shards
    // actually answered.
    let served: u64 = shards
        .iter()
        .map(|s| s.metrics().endpoint_count("/shard_topk"))
        .sum();
    assert!(served > 0, "no /shard_topk request reached any shard");

    for s in shards {
        s.shutdown();
    }
    single.shutdown();
    primary.server.shutdown();
}

#[test]
fn killed_follower_catches_up_from_journal_to_identical_bytes() {
    let primary = spawn_primary(SEED);
    let primary_addr = primary.server.addr().to_string();
    let dir = std::env::temp_dir().join(format!("hta-cluster-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("replica.journal");

    // Phase 1: a journaled follower applies the current epoch, then dies
    // (connection dropped, process "killed").
    let (status, _, _) = call(&primary_addr, "POST", "/register?keywords=english;survey");
    assert_eq!(status, 200);
    {
        let mut rstate = ReplicaState::with_journal(&journal);
        let mut follower = Follower::connect(&primary.repl_addr, rstate.epoch).unwrap();
        let update = follower.next_update().unwrap();
        rstate.apply(update).unwrap();
        assert!(rstate.epoch > 0);
    } // drop = kill

    // Phase 2: the cluster keeps moving without it.
    for target in [
        "/register?keywords=english;audio",
        "/assign?worker=0",
        "/assign?worker=1",
    ] {
        let (status, body, _) = call(&primary_addr, "POST", target);
        assert_eq!(status, 200, "{body}");
    }

    // Phase 3: relaunch from the same journal; the handshake resumes from
    // the journaled epoch and the delta chain (or a full snapshot) brings
    // it to byte-identical state.
    let mut rstate = ReplicaState::with_journal(&journal);
    assert!(rstate.epoch > 0, "journal should resume a nonzero epoch");
    let caught_up = acquire_initial_state(&primary.repl_addr, &mut rstate, Duration::from_secs(10))
        .expect("rejoin");
    let deadline = Instant::now() + Duration::from_secs(10);
    let head = primary.hub.epoch();
    let mut follower = Follower::connect(&primary.repl_addr, rstate.epoch).unwrap();
    while rstate.epoch < head {
        assert!(Instant::now() < deadline, "stuck at epoch {}", rstate.epoch);
        let update = follower.next_update().unwrap();
        rstate.apply(update).unwrap();
    }
    let rejoined = if rstate.epoch > 0 && caught_up.snapshot_bytes() != rstate.bytes {
        PlatformState::from_snapshot_bytes(&rstate.bytes).expect("rejoined state")
    } else {
        caught_up
    };
    assert_eq!(
        rejoined.snapshot_bytes(),
        primary.state.snapshot_bytes(),
        "rejoined follower is not byte-identical"
    );
    primary.server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
