//! Wire-level tests of the reactor front-end over real TCP: keep-alive,
//! hostile fragmentation, pipelining, oversized and malformed requests.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hta_datagen::amt::{generate, AmtConfig};
use hta_net::client;
use hta_server::{PlatformState, ServeOptions, Server};

fn start() -> Server {
    let w = generate(&AmtConfig {
        n_groups: 8,
        tasks_per_group: 5,
        vocab_size: 40,
        ..Default::default()
    });
    let state = Arc::new(PlatformState::new(w.space, w.tasks, 3, 5));
    Server::spawn("127.0.0.1:0", state).unwrap()
}

#[test]
fn headers_split_across_arbitrary_reads_still_parse() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // One byte at a time, with pauses: the parser must accumulate across
    // reads and only fire once the head is complete.
    let wire = b"GET /health HTTP/1.1\r\nHost: split\r\nX-Filler: abc\r\n\r\n";
    for chunk in wire.chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.keep_alive());
    server.shutdown();
}

#[test]
fn pipelined_requests_come_back_in_order_on_one_connection() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Register + stats + health in one write; responses must arrive in
    // request order even though they take different code paths (pool vs
    // inline).
    let mut batch = Vec::new();
    batch.extend_from_slice(&client::request_bytes(
        "POST",
        "/register?keywords=english",
        true,
    ));
    batch.extend_from_slice(&client::request_bytes("GET", "/stats", true));
    batch.extend_from_slice(&client::request_bytes("GET", "/health", true));
    stream.write_all(&batch).unwrap();

    let first = client::read_response(&mut reader).unwrap();
    assert_eq!(first.status, 200);
    assert!(
        first.body_text().contains("\"worker_id\":0"),
        "register first"
    );
    let second = client::read_response(&mut reader).unwrap();
    assert!(second.body_text().contains("\"workers\":1"), "stats second");
    let third = client::read_response(&mut reader).unwrap();
    assert!(
        third.body_text().contains("\"status\":\"ok\""),
        "health third"
    );
    server.shutdown();
}

#[test]
fn oversized_request_line_gets_431_and_a_close() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let huge = format!("GET /{} HTTP/1.1\r\n", "x".repeat(16 * 1024));
    stream.write_all(huge.as_bytes()).unwrap();
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 431);
    assert!(!resp.keep_alive(), "431 is fatal for the connection");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closed after the error");
    server.shutdown();
}

#[test]
fn malformed_request_gets_400_but_the_connection_survives() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(b"this is not http\r\nHost: x\r\n\r\n")
        .unwrap();
    let bad = client::read_response(&mut reader).unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.keep_alive(), "a client error does not kill the socket");
    // The same connection keeps working.
    stream
        .write_all(&client::request_bytes("GET", "/health", true))
        .unwrap();
    let good = client::read_response(&mut reader).unwrap();
    assert_eq!(good.status, 200);
    server.shutdown();
}

#[test]
fn http_10_and_connection_close_are_honored() {
    let server = start();
    // Explicit Connection: close → one response, then EOF.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(&client::request_bytes("GET", "/health", false))
        .unwrap();
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    assert!(!resp.keep_alive());
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // HTTP/1.0 without Connection: keep-alive also closes.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(b"GET /health HTTP/1.0\r\nHost: old\r\n\r\n")
        .unwrap();
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    assert!(!resp.keep_alive());
    server.shutdown();
}

#[test]
fn saturated_solver_pool_backpressures_with_503_but_health_stays_up() {
    let w = generate(&AmtConfig {
        n_groups: 40,
        tasks_per_group: 10,
        vocab_size: 100,
        ..Default::default()
    });
    let state = Arc::new(PlatformState::new(w.space, w.tasks, 10, 5));
    let server = Server::spawn_with(
        "127.0.0.1:0",
        Arc::clone(&state),
        ServeOptions {
            listen_threads: 1,
            solver_pool: 1,
            queue_capacity: 1,
        },
    )
    .unwrap();
    // Register a cohort up front (fast requests, one connection), then
    // flood solver-bound `/assign` calls from many connections at once:
    // the single pool worker is busy solving, the queue holds one, and
    // everything else must bounce with 503.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        for i in 0..24 {
            s.write_all(&client::request_bytes(
                "POST",
                &format!("/register?keywords=w{i};english"),
                true,
            ))
            .unwrap();
            assert_eq!(client::read_response(&mut r).unwrap().status, 200);
        }
    }
    for i in 0..24 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&client::request_bytes(
            "POST",
            &format!("/assign?worker={i}"),
            true,
        ))
        .unwrap();
        // Leak the connections on purpose: their responses (200 or 503)
        // are never read, but the rejection counter tells the story.
        std::mem::forget(s);
    }
    // While the pool is busy, /health must still answer from the reactor.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(&client::request_bytes("GET", "/health", true))
        .unwrap();
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200, "inline liveness unaffected by load");

    // Give the flood time to hit the queue bound, then check the counter.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let metrics = server.metrics();
    while std::time::Instant::now() < deadline
        && metrics
            .net
            .rejected_busy
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        metrics
            .net
            .rejected_busy
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "queue bound produced at least one 503"
    );
    server.shutdown();
}
