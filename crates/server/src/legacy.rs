//! The original TCP accept loop — one thread per connection, one request
//! per connection — kept as the measured baseline for `hta-loadgen`'s
//! reactor-vs-threads comparison (BENCH_server.json) and as a minimal
//! reference implementation. New deployments use [`crate::server::Server`],
//! the epoll reactor front-end.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, write_response, Response};
use crate::service::handle;
use crate::state::PlatformState;

/// A running thread-per-connection server.
pub struct LegacyServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LegacyServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and serve
    /// `state` on a background thread.
    pub fn spawn(addr: &str, state: Arc<PlatformState>) -> std::io::Result<LegacyServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // A short accept timeout lets the loop observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                match accept_next(&listener) {
                    Ok((stream, _)) => {
                        let state = Arc::clone(&state);
                        workers.push(std::thread::spawn(move || serve_one(stream, &state)));
                        // Opportunistically reap finished handlers.
                        workers.retain(|h| !h.is_finished());
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        // Transient accept failures (EMFILE when the fd
                        // table is briefly full, ECONNABORTED from a client
                        // that hung up in the backlog, EINTR, ...) must not
                        // kill the listener for good: log, back off so a
                        // resource-exhaustion error is not spun on, retry.
                        eprintln!("hta-server: accept error (retrying): {e}");
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
            for h in workers {
                let _ = h.join();
            }
        });
        Ok(LegacyServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LegacyServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Accept one connection, with a test-only fault hook: while the induced
/// error counter is armed, an error is returned *instead of* accepting, so
/// a real client waits in the backlog until the loop has survived the
/// failures and retried.
fn accept_next(listener: &TcpListener) -> std::io::Result<(TcpStream, SocketAddr)> {
    #[cfg(test)]
    if tests::INDUCED_ACCEPT_ERRORS
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
    {
        return Err(std::io::Error::other("induced accept failure"));
    }
    listener.accept()
}

fn serve_one(mut stream: TcpStream, state: &PlatformState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let response = match read_request(&mut stream) {
        Ok(req) => handle(state, &req),
        Err(e) => Response::error(400, &e),
    };
    let _ = write_response(&mut stream, &response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_datagen::amt::{generate, AmtConfig};
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicUsize;

    /// How many upcoming accepts should fail with an induced error (shared
    /// by every test server in the process; tests that arm it run the
    /// request on the same thread, so the count drains before it returns).
    pub(super) static INDUCED_ACCEPT_ERRORS: AtomicUsize = AtomicUsize::new(0);

    fn start() -> (LegacyServer, Arc<PlatformState>) {
        let w = generate(&AmtConfig {
            n_groups: 10,
            tasks_per_group: 5,
            vocab_size: 40,
            ..Default::default()
        });
        let state = Arc::new(PlatformState::new(w.space, w.tasks, 3, 11));
        let server = LegacyServer::spawn("127.0.0.1:0", Arc::clone(&state)).unwrap();
        (server, state)
    }

    fn request(addr: SocketAddr, line: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "{line}\r\nHost: test\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (status, body)
    }

    #[test]
    fn end_to_end_over_tcp() {
        let (server, _state) = start();
        let addr = server.addr();

        let (status, body) = request(addr, "GET /health HTTP/1.1");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");

        let (status, body) = request(addr, "POST /register?keywords=english;audio HTTP/1.1");
        assert_eq!(status, 200);
        assert!(body.contains("\"worker_id\":0"));

        let (status, body) = request(addr, "POST /assign?worker=0 HTTP/1.1");
        assert_eq!(status, 200);
        assert!(body.contains("\"tasks\":["), "{body}");

        let (status, _) = request(addr, "GET /stats HTTP/1.1");
        assert_eq!(status, 200);

        let (status, _) = request(addr, "GET /missing HTTP/1.1");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn malformed_request_is_a_400() {
        let (server, _state) = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        server.shutdown();
    }

    #[test]
    fn accept_errors_do_not_kill_the_listener() {
        let (server, _state) = start();
        let addr = server.addr();
        // Arm three induced accept failures; the loop must log, back off,
        // and keep accepting — the `Err(_) => break` it replaced would have
        // left this connect hanging until the read timeout.
        INDUCED_ACCEPT_ERRORS.store(3, Ordering::Relaxed);
        let (status, body) = request(addr, "GET /health HTTP/1.1");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");
        assert_eq!(
            INDUCED_ACCEPT_ERRORS.load(Ordering::Relaxed),
            0,
            "the error path was actually exercised"
        );
        // The server is still healthy afterwards.
        let (status, _) = request(addr, "GET /stats HTTP/1.1");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_share_state() {
        let (server, state) = start();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    request(addr, &format!("POST /register?keywords=worker{i} HTTP/1.1"))
                })
            })
            .collect();
        for h in handles {
            let (status, _) = h.join().unwrap();
            assert_eq!(status, 200);
        }
        assert_eq!(state.stats().workers, 4);
        server.shutdown();
    }
}
