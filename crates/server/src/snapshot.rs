//! Checkpoint/restore for the serving state.
//!
//! A server snapshot captures the whole [`PlatformState`] — the keyword
//! space (names included, so interned ids survive), the task catalog, every
//! registered worker with their adaptive estimator and assignment ledger,
//! the task-availability vector, the sharded keyword index (posting order
//! preserved — it encodes swap-remove history), the solver RNG's stream
//! position, and the platform parameters. A restored server is
//! *behaviorally identical* to the one that saved the snapshot: the next
//! `/assign` on either produces the same tasks, and `/stats` reports the
//! same counters down to the per-shard sizes.
//!
//! The bytes live in an [`hta_snapshot`] container (magic, version,
//! checksummed sections, atomic writes); this module defines the section
//! payloads via [`StateSerialize`] and validates cross-section invariants
//! on load — a snapshot either restores completely or not at all.

use std::fmt;
use std::io;
use std::path::Path;

use hta_core::state::{decode, encode, StateDecodeError, StateReader, StateSerialize};
use hta_index::CandidateMode;
use hta_snapshot::{Snapshot, SnapshotBuilder, SnapshotError};

use crate::state::{Inner, PlatformState, WorkerState};

/// `kind` string of server-state snapshots (distinct from the experiment
/// runner's `"hta-crowd-run"`, so the two cannot be confused on load).
pub const SNAPSHOT_KIND: &str = "hta-server-state";

const SECTION_SPACE: &str = "space";
const SECTION_TASKS: &str = "tasks";
const SECTION_WORKERS: &str = "workers";
const SECTION_PLATFORM: &str = "platform";
const SECTION_INDEX: &str = "index";
const SECTION_RNG: &str = "rng";

/// Why a server snapshot could not be saved or loaded.
#[derive(Debug)]
pub enum ServerSnapshotError {
    /// The container layer rejected the file (bad magic, version,
    /// checksum, truncation, missing section…).
    Container(SnapshotError),
    /// The file is a valid container but not a server-state snapshot.
    WrongKind {
        /// The `kind` the file declares.
        found: String,
    },
    /// A section's payload failed to decode.
    Decode {
        /// Which section.
        section: &'static str,
        /// The decoder's error.
        source: StateDecodeError,
    },
    /// Sections decoded but are mutually inconsistent.
    Invalid(String),
    /// Filesystem failure while writing.
    Io(io::Error),
}

impl fmt::Display for ServerSnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Container(e) => write!(f, "{e}"),
            Self::WrongKind { found } => write!(
                f,
                "not a server-state snapshot: kind is {found:?}, expected {SNAPSHOT_KIND:?}"
            ),
            Self::Decode { section, source } => {
                write!(f, "section {section:?} failed to decode: {source}")
            }
            Self::Invalid(msg) => write!(f, "inconsistent snapshot: {msg}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServerSnapshotError {}

impl From<SnapshotError> for ServerSnapshotError {
    fn from(e: SnapshotError) -> Self {
        Self::Container(e)
    }
}

impl From<io::Error> for ServerSnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl StateSerialize for WorkerState {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.keywords.write_state(out);
        self.estimator.write_state(out);
        self.assigned.write_state(out);
        self.completed.write_state(out);
        self.reputation.write_state(out);
    }

    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        Ok(Self {
            keywords: StateSerialize::read_state(r)?,
            estimator: StateSerialize::read_state(r)?,
            assigned: Vec::<usize>::read_state(r)?,
            completed: Vec::<usize>::read_state(r)?,
            reputation: StateSerialize::read_state(r)?,
        })
    }
}

/// The scalar platform parameters plus the availability vector — everything
/// in [`Inner`] that is not a section of its own.
struct PlatformSection {
    available: Vec<bool>,
    xmax: usize,
    max_instance_tasks: usize,
    mode: CandidateMode,
    solver_threads: usize,
}

impl StateSerialize for PlatformSection {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.available.write_state(out);
        self.xmax.write_state(out);
        self.max_instance_tasks.write_state(out);
        self.mode.write_state(out);
        self.solver_threads.write_state(out);
    }

    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let s = Self {
            available: Vec::<bool>::read_state(r)?,
            xmax: usize::read_state(r)?,
            max_instance_tasks: usize::read_state(r)?,
            mode: CandidateMode::read_state(r)?,
            solver_threads: usize::read_state(r)?,
        };
        if s.xmax == 0 {
            return Err(StateDecodeError::Invalid("xmax must be ≥ 1".into()));
        }
        if s.max_instance_tasks == 0 {
            return Err(StateDecodeError::Invalid(
                "max_instance_tasks must be ≥ 1".into(),
            ));
        }
        Ok(s)
    }
}

/// Build the snapshot container for already-locked inner state. Split out
/// of [`PlatformState::snapshot_bytes`] so the cluster coordinator can
/// serialize the state it is *currently holding the lock on* (to publish a
/// replication epoch mid-assign) without re-entering the mutex.
pub(crate) fn builder_from_inner(inner: &Inner) -> SnapshotBuilder {
    let platform = PlatformSection {
        available: inner.available.clone(),
        xmax: inner.xmax,
        max_instance_tasks: inner.max_instance_tasks,
        mode: inner.mode,
        solver_threads: inner.solver_threads,
    };
    SnapshotBuilder::new(SNAPSHOT_KIND)
        .section(SECTION_SPACE, encode(&inner.space))
        .section(SECTION_TASKS, encode(&inner.tasks))
        .section(SECTION_WORKERS, encode(&inner.workers))
        .section(SECTION_PLATFORM, encode(&platform))
        .section(SECTION_INDEX, encode(&inner.index))
        .section(SECTION_RNG, encode(&inner.rng))
}

/// [`builder_from_inner`] straight to bytes.
pub(crate) fn bytes_from_inner(inner: &Inner) -> Vec<u8> {
    builder_from_inner(inner).to_bytes()
}

impl PlatformState {
    fn snapshot_builder(&self) -> SnapshotBuilder {
        self.with_inner(builder_from_inner)
    }

    /// The snapshot's on-disk byte representation.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_builder().to_bytes()
    }

    /// Replace this server's entire state with the one encoded in `bytes`
    /// — the replica apply path. The `Arc<PlatformState>` the HTTP layer
    /// holds stays valid: requests racing the swap see either the old or
    /// the new state in full, never a mix, and invalid bytes leave the
    /// state untouched.
    pub fn replace_from_snapshot_bytes(&self, bytes: &[u8]) -> Result<(), ServerSnapshotError> {
        let fresh = Self::from_snapshot_bytes(bytes)?;
        self.replace_with(fresh);
        Ok(())
    }

    /// Atomically save a snapshot of the full serving state to `path`
    /// (write-to-temp, `fsync`, rename). Returns the file size in bytes.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, ServerSnapshotError> {
        let builder = self.snapshot_builder();
        let len = builder.to_bytes().len();
        builder.write_atomic(path)?;
        Ok(len)
    }

    /// Restore a server from a snapshot file. The result is behaviorally
    /// identical to the state that saved it; corrupt, truncated, or
    /// inconsistent files are rejected whole.
    pub fn restore(path: &Path) -> Result<Self, ServerSnapshotError> {
        Self::from_snapshot_bytes_inner(&Snapshot::load(path)?)
    }

    /// Restore from in-memory snapshot bytes (see [`Self::restore`]).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, ServerSnapshotError> {
        Self::from_snapshot_bytes_inner(&Snapshot::from_bytes(bytes)?)
    }

    fn from_snapshot_bytes_inner(snap: &Snapshot) -> Result<Self, ServerSnapshotError> {
        if snap.kind() != SNAPSHOT_KIND {
            return Err(ServerSnapshotError::WrongKind {
                found: snap.kind().to_owned(),
            });
        }
        fn section<T: StateSerialize>(
            snap: &Snapshot,
            name: &'static str,
        ) -> Result<T, ServerSnapshotError> {
            decode(snap.section(name)?).map_err(|source| ServerSnapshotError::Decode {
                section: name,
                source,
            })
        }
        let space: hta_core::KeywordSpace = section(snap, SECTION_SPACE)?;
        let tasks: hta_core::TaskPool = section(snap, SECTION_TASKS)?;
        let workers: Vec<WorkerState> = section(snap, SECTION_WORKERS)?;
        let platform: PlatformSection = section(snap, SECTION_PLATFORM)?;
        let index: hta_index::ShardedIndex = section(snap, SECTION_INDEX)?;
        let rng: rand::rngs::StdRng = section(snap, SECTION_RNG)?;

        let invalid = |msg: String| Err(ServerSnapshotError::Invalid(msg));
        if rng.state() == [0u64; 4] {
            return invalid("all-zero RNG state".into());
        }
        if platform.available.len() != tasks.len() {
            return invalid(format!(
                "availability vector covers {} tasks, catalog has {}",
                platform.available.len(),
                tasks.len()
            ));
        }
        // Registration widens the index with the space in lock-step.
        if index.nbits() != space.len() {
            return invalid(format!(
                "index is over {} keywords, space has {}",
                index.nbits(),
                space.len()
            ));
        }
        for t in tasks.tasks() {
            if t.keywords.nbits() > space.len() {
                return invalid(format!(
                    "task {} has keywords over a universe of {} (> space {})",
                    t.id.0,
                    t.keywords.nbits(),
                    space.len()
                ));
            }
        }
        let open = platform.available.iter().filter(|&&a| a).count();
        if index.len() != open {
            return invalid(format!(
                "index holds {} tasks, {open} are open",
                index.len()
            ));
        }
        for t in index.open_tasks() {
            let ok = platform.available.get(t as usize).copied().unwrap_or(false);
            if !ok {
                return invalid(format!("index holds task {t}, which is not open"));
            }
        }
        // The assignment ledger must account for every closed task exactly
        // once: a task is open, on one worker's display, or completed by
        // one worker.
        let mut owned = vec![false; tasks.len()];
        for (w, worker) in workers.iter().enumerate() {
            if worker.keywords.nbits() > space.len() {
                return invalid(format!(
                    "worker {w} has keywords over a universe of {} (> space {})",
                    worker.keywords.nbits(),
                    space.len()
                ));
            }
            for &t in worker.assigned.iter().chain(&worker.completed) {
                if t >= tasks.len() {
                    return invalid(format!("worker {w} holds unknown task {t}"));
                }
                if platform.available[t] {
                    return invalid(format!("worker {w} holds task {t}, which is still open"));
                }
                if owned[t] {
                    return invalid(format!("task {t} appears in two ledger entries"));
                }
                owned[t] = true;
            }
        }
        let closed = tasks.len() - open;
        let accounted = owned.iter().filter(|&&o| o).count();
        if accounted != closed {
            return invalid(format!(
                "{closed} tasks are closed but only {accounted} appear in worker ledgers"
            ));
        }

        Ok(PlatformState::from_inner(Inner {
            space,
            tasks,
            available: platform.available,
            workers,
            rng,
            xmax: platform.xmax,
            max_instance_tasks: platform.max_instance_tasks,
            index,
            mode: platform.mode,
            solver_threads: platform.solver_threads,
            // The edge cache and warm-start state are derived over the
            // immutable catalog; neither is serialized and both rebuild
            // on the first solve, with byte-identical output either way.
            edge_cache: None,
            warm: None,
            warm_start: true,
            edge_cache_cap: 0,
            pool_maint: None,
            sparse_cache: None,
            sparse_warm: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_datagen::amt::{generate, AmtConfig};

    fn busy_state() -> PlatformState {
        let w = generate(&AmtConfig {
            n_groups: 12,
            tasks_per_group: 8,
            vocab_size: 60,
            ..Default::default()
        });
        let s =
            PlatformState::with_options(w.space, w.tasks, 5, 42, CandidateMode::default(), 3, 1);
        let w0 = s.register_worker(&["english", "survey"]).unwrap();
        let w1 = s.register_worker(&["audio", "fresh-keyword"]).unwrap();
        let a0 = s.assign(w0).unwrap();
        let a1 = s.assign(w1).unwrap();
        s.complete(w0, a0.tasks[0]).unwrap();
        s.complete(w0, a0.tasks[1]).unwrap();
        s.complete_with_outcome(w1, a1.tasks[0], false).unwrap();
        s
    }

    #[test]
    fn restored_state_is_behaviorally_identical() {
        let s = busy_state();
        let bytes = s.snapshot_bytes();
        let r = PlatformState::from_snapshot_bytes(&bytes).expect("restore");

        assert_eq!(r.stats(), s.stats(), "stats survive, shard sizes included");
        assert_eq!(r.candidate_mode(), s.candidate_mode());
        assert_eq!(r.task_keywords(0), s.task_keywords(0));
        for w in 0..2 {
            assert_eq!(
                r.reputation(w).unwrap(),
                s.reputation(w).unwrap(),
                "worker {w} reputation diverged across restore"
            );
        }

        // The next assignment draws on the restored index, estimators, and
        // RNG stream — it must match the original server exactly.
        let a = s.assign(0).unwrap();
        let b = r.assign(0).unwrap();
        assert_eq!(a, b, "post-restore assignment diverged");
        assert_eq!(r.stats(), s.stats(), "stats stay in lock-step");
    }

    #[test]
    fn snapshot_file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("hta-server-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.htasnap");

        let s = busy_state();
        let len = s.save_snapshot(&path).expect("save");
        assert_eq!(len, std::fs::metadata(&path).unwrap().len() as usize);
        let r = PlatformState::restore(&path).expect("restore");
        assert_eq!(r.stats(), s.stats());

        // No temp files linger after the rename.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_bytes_are_rejected_never_half_restored() {
        let bytes = busy_state().snapshot_bytes();
        for cut in [0, 7, 8, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                PlatformState::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        for pos in (0..bytes.len()).step_by(61) {
            let mut t = bytes.clone();
            t[pos] ^= 0x01;
            assert!(
                PlatformState::from_snapshot_bytes(&t).is_err(),
                "bit flip at {pos} accepted"
            );
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let bytes = SnapshotBuilder::new("hta-crowd-run").to_bytes();
        match PlatformState::from_snapshot_bytes(&bytes) {
            Err(ServerSnapshotError::WrongKind { found }) => {
                assert_eq!(found, "hta-crowd-run");
            }
            Err(e) => panic!("expected WrongKind, got {e:?}"),
            Ok(_) => panic!("wrong-kind snapshot accepted"),
        }
    }

    #[test]
    fn inconsistent_sections_are_rejected() {
        // Re-assemble a valid snapshot with a tampered availability vector:
        // task 0 is marked open again while a worker still holds it.
        let s = busy_state();
        let (mut platform, sections) = s.with_inner(|inner| {
            let platform = PlatformSection {
                available: inner.available.clone(),
                xmax: inner.xmax,
                max_instance_tasks: inner.max_instance_tasks,
                mode: inner.mode,
                solver_threads: inner.solver_threads,
            };
            let sections = (
                encode(&inner.space),
                encode(&inner.tasks),
                encode(&inner.workers),
                encode(&inner.index),
                encode(&inner.rng),
            );
            (platform, sections)
        });
        let closed = platform.available.iter().position(|&a| !a).unwrap();
        platform.available[closed] = true;
        let bytes = SnapshotBuilder::new(SNAPSHOT_KIND)
            .section(SECTION_SPACE, sections.0)
            .section(SECTION_TASKS, sections.1)
            .section(SECTION_WORKERS, sections.2)
            .section(SECTION_PLATFORM, encode(&platform))
            .section(SECTION_INDEX, sections.3)
            .section(SECTION_RNG, sections.4)
            .to_bytes();
        match PlatformState::from_snapshot_bytes(&bytes) {
            Err(ServerSnapshotError::Invalid(msg)) => {
                assert!(msg.contains("open") || msg.contains("index"), "{msg}");
            }
            Err(e) => panic!("expected Invalid, got {e:?}"),
            Ok(_) => panic!("inconsistent snapshot accepted"),
        }
    }
}
