//! Serving-layer counters surfaced on `GET /stats`: per-endpoint request
//! counts, reactor/pool counters from [`NetMetrics`], and a log₂-bucketed
//! handler-latency histogram (p50/p95/p99 without storing samples).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hta_net::NetMetrics;

/// The endpoints tracked individually; anything else lands in `other`.
pub const ENDPOINTS: [&str; 9] = [
    "health",
    "register",
    "assign",
    "assign_batch",
    "complete",
    "tasks",
    "stats",
    "snapshot",
    "other",
];

/// Number of log₂ latency buckets; bucket `k` covers `[2^k, 2^(k+1))` µs,
/// so 32 buckets span sub-microsecond to over an hour.
const LAT_BUCKETS: usize = 32;

/// A lock-free histogram of handler latencies in microseconds.
struct LatencyHisto {
    buckets: [AtomicU64; LAT_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHisto {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(LAT_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Approximate quantiles from the bucket counts: each reported value is
    /// the upper bound (exclusive, in µs) of the bucket holding the
    /// quantile, so it over-reports by at most 2×.
    fn quantiles(&self, qs: &[f64]) -> Vec<u64> {
        let loads: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = loads.iter().sum();
        qs.iter()
            .map(|&q| {
                if total == 0 {
                    return 0;
                }
                let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
                let mut cumulative = 0u64;
                for (k, &n) in loads.iter().enumerate() {
                    cumulative += n;
                    if cumulative >= rank {
                        return 1u64 << (k + 1).min(63);
                    }
                }
                1u64 << 63
            })
            .collect()
    }
}

/// Counters for the serving layer, shared between the reactor handler and
/// the `/stats` endpoint. All methods are lock-free.
pub struct ServingMetrics {
    /// The reactor-core counters (connections, queue depth, 503s).
    pub net: Arc<NetMetrics>,
    endpoint_counts: [AtomicU64; ENDPOINTS.len()],
    latency: LatencyHisto,
}

impl ServingMetrics {
    /// Wrap the reactor counters.
    pub fn new(net: Arc<NetMetrics>) -> Self {
        Self {
            net,
            endpoint_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: LatencyHisto::new(),
        }
    }

    fn endpoint_index(path: &str) -> usize {
        let name = path.strip_prefix('/').unwrap_or(path);
        ENDPOINTS
            .iter()
            .position(|&e| e == name)
            .unwrap_or(ENDPOINTS.len() - 1)
    }

    /// Record one handled request: which endpoint, and how long the handler
    /// ran (solve time included, queue wait excluded).
    pub fn record(&self, path: &str, elapsed: Duration) {
        self.endpoint_counts[Self::endpoint_index(path)].fetch_add(1, Ordering::Relaxed);
        self.latency.record(elapsed);
    }

    /// Requests recorded for `path` (test/introspection helper).
    pub fn endpoint_count(&self, path: &str) -> u64 {
        self.endpoint_counts[Self::endpoint_index(path)].load(Ordering::Relaxed)
    }

    /// The `"serving":{…}` JSON fragment spliced into `GET /stats`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let qs = self.latency.quantiles(&[0.5, 0.95, 0.99]);
        let count = self.latency.count.load(Ordering::Relaxed);
        let mean = if count == 0 {
            0.0
        } else {
            self.latency.sum_us.load(Ordering::Relaxed) as f64 / count as f64
        };
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"requests\":{},\"inline\":{},\"pooled\":{},\"rejected_503\":{},\"parse_errors\":{},\"queue_depth\":{},\"connections_accepted\":{},\"connections_active\":{}",
            self.net.requests_total(),
            self.net.requests_inline.load(Ordering::Relaxed),
            self.net.requests_pooled.load(Ordering::Relaxed),
            self.net.rejected_busy.load(Ordering::Relaxed),
            self.net.parse_errors.load(Ordering::Relaxed),
            self.net.queue_depth.load(Ordering::Relaxed),
            self.net.connections_accepted.load(Ordering::Relaxed),
            self.net.connections_active(),
        );
        out.push_str(",\"endpoints\":{");
        for (i, name) in ENDPOINTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{}",
                self.endpoint_counts[i].load(Ordering::Relaxed)
            );
        }
        let _ = write!(
            out,
            "}},\"latency_us\":{{\"count\":{count},\"mean\":{mean:.1},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}}}",
            qs[0],
            qs[1],
            qs[2],
            self.latency.max_us.load(Ordering::Relaxed),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_counts_and_fallback() {
        let m = ServingMetrics::new(Arc::new(NetMetrics::default()));
        m.record("/assign", Duration::from_micros(120));
        m.record("/assign", Duration::from_micros(80));
        m.record("/no-such-endpoint", Duration::from_micros(5));
        assert_eq!(m.endpoint_count("/assign"), 2);
        assert_eq!(m.endpoint_count("/other"), 1);
        assert_eq!(m.endpoint_count("/stats"), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let m = ServingMetrics::new(Arc::new(NetMetrics::default()));
        for _ in 0..99 {
            m.record("/assign", Duration::from_micros(100)); // bucket [64,128)
        }
        m.record("/assign", Duration::from_millis(50)); // the slow tail
        let json = m.to_json();
        assert!(json.contains("\"count\":100"), "{json}");
        assert!(json.contains("\"p50\":128"), "{json}");
        assert!(json.contains("\"max\":50000"), "{json}");
        // p99 lands in the 100µs bulk (rank 99 of 100), p99's bucket upper
        // bound is still 128µs; the 50ms outlier only shows in max.
        assert!(json.contains("\"p99\":128"), "{json}");
    }

    #[test]
    fn zero_state_serializes_cleanly() {
        let m = ServingMetrics::new(Arc::new(NetMetrics::default()));
        let json = m.to_json();
        assert!(json.contains("\"requests\":0"));
        assert!(json.contains("\"p50\":0"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
