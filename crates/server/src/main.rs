//! `hta-serve` — run the crowdsourcing platform service.
//!
//! ```text
//! hta-serve [addr] [tasks.csv] [--restore state.htasnap]
//! ```
//!
//! With no task CSV, serves a generated AMT-like corpus (1000 tasks). With
//! `--restore`, rehydrates the full serving state — workers, estimators,
//! assignment ledger, index, RNG stream — from a snapshot saved via
//! `POST /snapshot`, and picks up exactly where that server left off.
//! Endpoints: see `hta_server::service`.

use std::path::Path;
use std::sync::Arc;

use hta_server::{PlatformState, Server};

fn main() {
    let mut addr = "127.0.0.1:8080".to_owned();
    let mut restore: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--restore" {
            match args.next() {
                Some(p) => restore = Some(p),
                None => {
                    eprintln!("error: --restore needs a snapshot path");
                    std::process::exit(2);
                }
            }
        } else {
            positionals.push(arg);
        }
    }
    let mut positionals = positionals.into_iter();
    if let Some(a) = positionals.next() {
        addr = a;
    }
    let csv_path = positionals.next();
    if restore.is_some() && csv_path.is_some() {
        eprintln!("error: --restore and a task CSV are mutually exclusive");
        std::process::exit(2);
    }

    let state = match (restore, csv_path) {
        (Some(snap_path), _) => {
            let state = PlatformState::restore(Path::new(&snap_path)).unwrap_or_else(|e| {
                eprintln!("error: cannot restore {snap_path}: {e}");
                std::process::exit(1);
            });
            let st = state.stats();
            println!(
                "restored {snap_path}: {} workers, {} open / {} assigned / {} completed tasks",
                st.workers, st.open_tasks, st.assigned_tasks, st.completed_tasks
            );
            state
        }
        (None, Some(csv_path)) => {
            let csv = std::fs::read_to_string(&csv_path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {csv_path}: {e}");
                std::process::exit(1);
            });
            let (space, tasks) = hta_datagen::export::tasks_from_csv(&csv).unwrap_or_else(|e| {
                eprintln!("error: cannot parse {csv_path}: {e}");
                std::process::exit(1);
            });
            println!("loaded {} tasks from {csv_path}", tasks.len());
            PlatformState::new(space, tasks, 15, 0x5E11)
        }
        (None, None) => {
            let w = hta_datagen::amt::generate(&hta_datagen::amt::AmtConfig {
                n_groups: 100,
                tasks_per_group: 10,
                ..Default::default()
            });
            println!("serving a generated corpus of {} tasks", w.tasks.len());
            PlatformState::new(w.space, w.tasks, 15, 0x5E11)
        }
    };

    let server = Server::spawn(&addr, Arc::new(state)).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("hta platform service listening on http://{}", server.addr());
    println!(
        "try: curl -X POST 'http://{}/register?keywords=english;audio'",
        server.addr()
    );

    // Serve until interrupted.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
