//! `hta-serve` — run the crowdsourcing platform service.
//!
//! ```text
//! hta-serve [addr] [tasks.csv] [--restore state.htasnap]
//!           [--listen-threads N] [--solver-pool N] [--queue-capacity N]
//!           [--snapshot-on-exit state.htasnap] [--edge-cache-cap N]
//!           [--role primary|replica|shard-worker]
//!           [--repl-listen addr] [--shard-workers a,b,c]        # primary
//!           [--join addr] [--primary-http addr] [--journal F]   # followers
//!           [--shard-index N] [--shard-count N]                 # shard worker
//! ```
//!
//! With no task CSV, serves a generated AMT-like corpus (1000 tasks). With
//! `--restore`, rehydrates the full serving state — workers, estimators,
//! assignment ledger, index, RNG stream — from a snapshot saved via
//! `POST /snapshot`, and picks up exactly where that server left off.
//!
//! Sizing: `--listen-threads` sets the reactor (event-loop) thread count
//! (default: `HTA_SERVER_THREADS` or 1), `--solver-pool` the worker threads
//! running solves (default 2), `--queue-capacity` the backpressure bound
//! (default 64; a full queue answers `503` + `Retry-After`).
//! `--edge-cache-cap` overrides the dense edge-cache catalog cap
//! (default: `HTA_EDGE_CACHE_CAP` or 4096); past the cap, top-k solves run
//! on the sparse warm-start pipeline with byte-identical assignments. The
//! resolved cap shows up in `GET /stats`.
//!
//! Cluster roles (DESIGN.md §14): `--role primary` additionally serves a
//! replication stream on `--repl-listen` (default `127.0.0.1:7171`) and,
//! given `--shard-workers`, fans candidate retrieval out to those HTTP
//! addresses. `--role replica` / `--role shard-worker` fetch their initial
//! state from the primary's `--join` address (or the `--journal` file when
//! it holds one), follow the delta stream, answer reads locally, and
//! redirect writes to `--primary-http`. A shard worker also needs
//! `--shard-index`/`--shard-count` and serves `GET /shard_topk`.
//!
//! `SIGINT`/`SIGTERM` shut down gracefully: stop accepting, drain in-flight
//! requests, then (with `--snapshot-on-exit`) save a final snapshot that a
//! later `--restore` resumes from. Endpoints: see `hta_server::service`.

use std::net::TcpListener;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use hta_cluster::{ReplicaState, ReplicationHub, ShardSpec, DEFAULT_RETAIN};
use hta_net::ShutdownSignals;
use hta_server::cluster::{
    acquire_initial_state, install_shard_coordinator, spawn_follower, AppliedEpoch, ClusterCtx,
    Role,
};
use hta_server::{PlatformState, ServeOptions, Server};

fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a valid value");
        std::process::exit(2);
    })
}

fn main() {
    // Block SIGINT/SIGTERM *before* any thread spawns so the whole process
    // inherits the mask and the signals arrive only on the signalfd below.
    let signals = ShutdownSignals::install(false).unwrap_or_else(|e| {
        eprintln!("error: cannot install signal handling: {e}");
        std::process::exit(1);
    });

    let mut addr = "127.0.0.1:8080".to_owned();
    let mut restore: Option<String> = None;
    let mut snapshot_on_exit: Option<String> = None;
    let mut role: Option<Role> = None;
    let mut repl_listen = "127.0.0.1:7171".to_owned();
    let mut join: Option<String> = None;
    let mut primary_http: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut shard_workers: Vec<String> = Vec::new();
    let mut shard_index: Option<u32> = None;
    let mut shard_count: Option<u32> = None;
    let mut edge_cache_cap: Option<usize> = None;
    let mut opts = ServeOptions::default();
    if let Some(n) = std::env::var("HTA_SERVER_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        opts.listen_threads = n;
    }
    let mut positionals: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--restore" => match args.next() {
                Some(p) => restore = Some(p),
                None => {
                    eprintln!("error: --restore needs a snapshot path");
                    std::process::exit(2);
                }
            },
            "--snapshot-on-exit" => match args.next() {
                Some(p) => snapshot_on_exit = Some(p),
                None => {
                    eprintln!("error: --snapshot-on-exit needs a snapshot path");
                    std::process::exit(2);
                }
            },
            "--listen-threads" => opts.listen_threads = parse_flag_value(&arg, args.next()),
            "--solver-pool" => opts.solver_pool = parse_flag_value(&arg, args.next()),
            "--queue-capacity" => opts.queue_capacity = parse_flag_value(&arg, args.next()),
            "--role" => role = Some(parse_flag_value(&arg, args.next())),
            "--repl-listen" => repl_listen = parse_flag_value(&arg, args.next()),
            "--join" => join = Some(parse_flag_value(&arg, args.next())),
            "--primary-http" => primary_http = Some(parse_flag_value(&arg, args.next())),
            "--journal" => journal = Some(parse_flag_value(&arg, args.next())),
            "--shard-workers" => {
                let list: String = parse_flag_value(&arg, args.next());
                shard_workers = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--shard-index" => shard_index = Some(parse_flag_value(&arg, args.next())),
            "--shard-count" => shard_count = Some(parse_flag_value(&arg, args.next())),
            "--edge-cache-cap" => edge_cache_cap = Some(parse_flag_value(&arg, args.next())),
            _ => positionals.push(arg),
        }
    }
    let mut positionals = positionals.into_iter();
    if let Some(a) = positionals.next() {
        addr = a;
    }
    let csv_path = positionals.next();
    if restore.is_some() && csv_path.is_some() {
        eprintln!("error: --restore and a task CSV are mutually exclusive");
        std::process::exit(2);
    }
    let follower_role = matches!(role, Some(Role::Replica | Role::ShardWorker));
    if follower_role && (restore.is_some() || csv_path.is_some()) {
        eprintln!("error: a follower's state comes from the primary, not --restore or a CSV");
        std::process::exit(2);
    }
    if follower_role && join.is_none() {
        eprintln!(
            "error: --role {} needs --join <primary repl addr>",
            role.unwrap()
        );
        std::process::exit(2);
    }
    if role == Some(Role::ShardWorker) && (shard_index.is_none() || shard_count.is_none()) {
        eprintln!("error: --role shard-worker needs --shard-index and --shard-count");
        std::process::exit(2);
    }

    // Followers acquire their entire state over the wire; everyone else
    // builds it locally.
    let state = if follower_role {
        let join = join.clone().unwrap();
        let mut rstate = match &journal {
            Some(path) => ReplicaState::with_journal(Path::new(path)),
            None => ReplicaState::empty(),
        };
        let state = acquire_initial_state(&join, &mut rstate, Duration::from_secs(30))
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        println!("follower caught up to epoch {} from {join}", rstate.epoch);
        let state = Arc::new(state);
        let applied = Arc::new(AppliedEpoch::new());
        applied.set(rstate.epoch);
        spawn_follower(join, rstate, Arc::clone(&state), Arc::clone(&applied));
        let primary = primary_http.clone().unwrap_or_else(|| {
            eprintln!("error: --role {} needs --primary-http", role.unwrap());
            std::process::exit(2);
        });
        let ctx = match role.unwrap() {
            Role::Replica => ClusterCtx::replica(primary, applied),
            Role::ShardWorker => ClusterCtx::shard_worker(
                primary,
                applied,
                ShardSpec::new(shard_index.unwrap(), shard_count.unwrap()),
            ),
            Role::Primary => unreachable!(),
        };
        (state, Some(Arc::new(ctx)))
    } else {
        let state = match (restore, csv_path) {
            (Some(snap_path), _) => {
                let state = PlatformState::restore(Path::new(&snap_path)).unwrap_or_else(|e| {
                    eprintln!("error: cannot restore {snap_path}: {e}");
                    std::process::exit(1);
                });
                let st = state.stats();
                println!(
                    "restored {snap_path}: {} workers, {} open / {} assigned / {} completed tasks",
                    st.workers, st.open_tasks, st.assigned_tasks, st.completed_tasks
                );
                state
            }
            (None, Some(csv_path)) => {
                let csv = std::fs::read_to_string(&csv_path).unwrap_or_else(|e| {
                    eprintln!("error: cannot read {csv_path}: {e}");
                    std::process::exit(1);
                });
                let (space, tasks) =
                    hta_datagen::export::tasks_from_csv(&csv).unwrap_or_else(|e| {
                        eprintln!("error: cannot parse {csv_path}: {e}");
                        std::process::exit(1);
                    });
                println!("loaded {} tasks from {csv_path}", tasks.len());
                PlatformState::new(space, tasks, 15, 0x5E11)
            }
            (None, None) => {
                let w = hta_datagen::amt::generate(&hta_datagen::amt::AmtConfig {
                    n_groups: 100,
                    tasks_per_group: 10,
                    ..Default::default()
                });
                println!("serving a generated corpus of {} tasks", w.tasks.len());
                PlatformState::new(w.space, w.tasks, 15, 0x5E11)
            }
        };
        let state = Arc::new(state);
        let ctx = if role == Some(Role::Primary) {
            let hub = Arc::new(ReplicationHub::new(DEFAULT_RETAIN));
            let listener = TcpListener::bind(&repl_listen).unwrap_or_else(|e| {
                eprintln!("error: cannot bind replication listener {repl_listen}: {e}");
                std::process::exit(1);
            });
            println!(
                "replication stream on {}",
                listener
                    .local_addr()
                    .map_or(repl_listen.clone(), |a| a.to_string())
            );
            // Epoch 1 is the full starting state, so a replica attaching
            // before the first mutation still gets something to serve.
            hub.publish(state.snapshot_bytes());
            {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || hub.serve(listener));
            }
            if !shard_workers.is_empty() {
                println!("sharded retrieval across {} workers", shard_workers.len());
                install_shard_coordinator(&state, Arc::clone(&hub), shard_workers);
            }
            Some(Arc::new(ClusterCtx::primary(hub)))
        } else {
            None
        };
        (state, ctx)
    };
    let (state, cluster) = state;
    if let Some(cap) = edge_cache_cap {
        // Node configuration, applied after every construction path
        // (restore, CSV, generated corpus, follower catch-up): the cap is
        // derived state and never travels in snapshots or the replication
        // stream.
        state.set_edge_cache_cap(cap);
        println!("edge-cache cap: {} tasks", state.edge_cache_cap());
    }

    let server = Server::spawn_with_cluster(&addr, Arc::clone(&state), opts.clone(), cluster)
        .unwrap_or_else(|e| {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
    if let Some(role) = role {
        println!("cluster role: {role}");
    }
    println!(
        "hta platform service listening on http://{} ({} reactor / {} solver threads, queue {})",
        server.addr(),
        opts.listen_threads.max(1),
        opts.solver_pool.max(1),
        opts.queue_capacity
    );
    println!(
        "try: curl -X POST 'http://{}/register?keywords=english;audio'",
        server.addr()
    );

    // Serve until SIGINT/SIGTERM, then drain and exit cleanly.
    signals.read_pending();
    println!("shutdown signal received; draining in-flight requests");
    server.shutdown();
    if let Some(path) = snapshot_on_exit {
        match state.save_snapshot(Path::new(&path)) {
            Ok(bytes) => println!("final snapshot saved to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("error: final snapshot failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("shutdown complete");
}
