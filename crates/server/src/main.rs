//! `hta-serve` — run the crowdsourcing platform service.
//!
//! ```text
//! hta-serve [addr] [tasks.csv]
//! ```
//!
//! With no task CSV, serves a generated AMT-like corpus (1000 tasks).
//! Endpoints: see `hta_server::service`.

use std::sync::Arc;

use hta_server::{PlatformState, Server};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:8080".to_owned());
    let state = match args.next() {
        Some(csv_path) => {
            let csv = std::fs::read_to_string(&csv_path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {csv_path}: {e}");
                std::process::exit(1);
            });
            let (space, tasks) = hta_datagen::export::tasks_from_csv(&csv).unwrap_or_else(|e| {
                eprintln!("error: cannot parse {csv_path}: {e}");
                std::process::exit(1);
            });
            println!("loaded {} tasks from {csv_path}", tasks.len());
            PlatformState::new(space, tasks, 15, 0x5E11)
        }
        None => {
            let w = hta_datagen::amt::generate(&hta_datagen::amt::AmtConfig {
                n_groups: 100,
                tasks_per_group: 10,
                ..Default::default()
            });
            println!("serving a generated corpus of {} tasks", w.tasks.len());
            PlatformState::new(w.space, w.tasks, 15, 0x5E11)
        }
    };

    let server = Server::spawn(&addr, Arc::new(state)).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("hta platform service listening on http://{}", server.addr());
    println!(
        "try: curl -X POST 'http://{}/register?keywords=english;audio'",
        server.addr()
    );

    // Serve until interrupted.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
