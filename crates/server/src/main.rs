//! `hta-serve` — run the crowdsourcing platform service.
//!
//! ```text
//! hta-serve [addr] [tasks.csv] [--restore state.htasnap]
//!           [--listen-threads N] [--solver-pool N] [--queue-capacity N]
//!           [--snapshot-on-exit state.htasnap]
//! ```
//!
//! With no task CSV, serves a generated AMT-like corpus (1000 tasks). With
//! `--restore`, rehydrates the full serving state — workers, estimators,
//! assignment ledger, index, RNG stream — from a snapshot saved via
//! `POST /snapshot`, and picks up exactly where that server left off.
//!
//! Sizing: `--listen-threads` sets the reactor (event-loop) thread count
//! (default: `HTA_SERVER_THREADS` or 1), `--solver-pool` the worker threads
//! running solves (default 2), `--queue-capacity` the backpressure bound
//! (default 64; a full queue answers `503` + `Retry-After`).
//!
//! `SIGINT`/`SIGTERM` shut down gracefully: stop accepting, drain in-flight
//! requests, then (with `--snapshot-on-exit`) save a final snapshot that a
//! later `--restore` resumes from. Endpoints: see `hta_server::service`.

use std::path::Path;
use std::sync::Arc;

use hta_net::ShutdownSignals;
use hta_server::{PlatformState, ServeOptions, Server};

fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a valid value");
        std::process::exit(2);
    })
}

fn main() {
    // Block SIGINT/SIGTERM *before* any thread spawns so the whole process
    // inherits the mask and the signals arrive only on the signalfd below.
    let signals = ShutdownSignals::install(false).unwrap_or_else(|e| {
        eprintln!("error: cannot install signal handling: {e}");
        std::process::exit(1);
    });

    let mut addr = "127.0.0.1:8080".to_owned();
    let mut restore: Option<String> = None;
    let mut snapshot_on_exit: Option<String> = None;
    let mut opts = ServeOptions::default();
    if let Some(n) = std::env::var("HTA_SERVER_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        opts.listen_threads = n;
    }
    let mut positionals: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--restore" => match args.next() {
                Some(p) => restore = Some(p),
                None => {
                    eprintln!("error: --restore needs a snapshot path");
                    std::process::exit(2);
                }
            },
            "--snapshot-on-exit" => match args.next() {
                Some(p) => snapshot_on_exit = Some(p),
                None => {
                    eprintln!("error: --snapshot-on-exit needs a snapshot path");
                    std::process::exit(2);
                }
            },
            "--listen-threads" => opts.listen_threads = parse_flag_value(&arg, args.next()),
            "--solver-pool" => opts.solver_pool = parse_flag_value(&arg, args.next()),
            "--queue-capacity" => opts.queue_capacity = parse_flag_value(&arg, args.next()),
            _ => positionals.push(arg),
        }
    }
    let mut positionals = positionals.into_iter();
    if let Some(a) = positionals.next() {
        addr = a;
    }
    let csv_path = positionals.next();
    if restore.is_some() && csv_path.is_some() {
        eprintln!("error: --restore and a task CSV are mutually exclusive");
        std::process::exit(2);
    }

    let state = match (restore, csv_path) {
        (Some(snap_path), _) => {
            let state = PlatformState::restore(Path::new(&snap_path)).unwrap_or_else(|e| {
                eprintln!("error: cannot restore {snap_path}: {e}");
                std::process::exit(1);
            });
            let st = state.stats();
            println!(
                "restored {snap_path}: {} workers, {} open / {} assigned / {} completed tasks",
                st.workers, st.open_tasks, st.assigned_tasks, st.completed_tasks
            );
            state
        }
        (None, Some(csv_path)) => {
            let csv = std::fs::read_to_string(&csv_path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {csv_path}: {e}");
                std::process::exit(1);
            });
            let (space, tasks) = hta_datagen::export::tasks_from_csv(&csv).unwrap_or_else(|e| {
                eprintln!("error: cannot parse {csv_path}: {e}");
                std::process::exit(1);
            });
            println!("loaded {} tasks from {csv_path}", tasks.len());
            PlatformState::new(space, tasks, 15, 0x5E11)
        }
        (None, None) => {
            let w = hta_datagen::amt::generate(&hta_datagen::amt::AmtConfig {
                n_groups: 100,
                tasks_per_group: 10,
                ..Default::default()
            });
            println!("serving a generated corpus of {} tasks", w.tasks.len());
            PlatformState::new(w.space, w.tasks, 15, 0x5E11)
        }
    };

    let state = Arc::new(state);
    let server = Server::spawn_with(&addr, Arc::clone(&state), opts.clone()).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "hta platform service listening on http://{} ({} reactor / {} solver threads, queue {})",
        server.addr(),
        opts.listen_threads.max(1),
        opts.solver_pool.max(1),
        opts.queue_capacity
    );
    println!(
        "try: curl -X POST 'http://{}/register?keywords=english;audio'",
        server.addr()
    );

    // Serve until SIGINT/SIGTERM, then drain and exit cleanly.
    signals.read_pending();
    println!("shutdown signal received; draining in-flight requests");
    server.shutdown();
    if let Some(path) = snapshot_on_exit {
        match state.save_snapshot(Path::new(&path)) {
            Ok(bytes) => println!("final snapshot saved to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("error: final snapshot failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("shutdown complete");
}
