//! The serving front-end: [`hta_net`]'s epoll reactor plus a bounded
//! solver pool, running the platform service with keep-alive HTTP/1.1.
//!
//! Reactor threads own the sockets and answer `/health` inline; everything
//! that touches [`PlatformState`] goes through the bounded job queue to a
//! solver-pool worker, so a long `/assign` solve never blocks accepts or
//! liveness probes, and a full queue answers `503` + `Retry-After` instead
//! of queueing unboundedly. The thread-per-connection baseline lives on in
//! [`crate::legacy::LegacyServer`].

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use hta_net::reactor::ServerConfig;
use hta_net::{HttpHandler, HttpResponse, NetMetrics, NetServer, RawRequest};

use crate::cluster::ClusterCtx;
use crate::http::{parse_query, Request};
use crate::metrics::ServingMetrics;
use crate::service;
use crate::state::PlatformState;

/// Sizing knobs for [`Server::spawn_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Reactor (event-loop) threads sharing the listener.
    pub listen_threads: usize,
    /// Solver-pool worker threads running the request handlers.
    pub solver_pool: usize,
    /// Job-queue capacity; beyond it requests get `503 Retry-After`.
    pub queue_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            listen_threads: 1,
            solver_pool: 2,
            queue_capacity: 64,
        }
    }
}

/// A running reactor server.
pub struct Server {
    net: NetServer,
    metrics: Arc<ServingMetrics>,
}

/// Routes raw reactor requests into [`service::handle_cluster`].
struct PlatformHandler {
    state: Arc<PlatformState>,
    metrics: Arc<ServingMetrics>,
    /// Cluster role configuration; `None` serves single-process.
    cluster: Option<Arc<ClusterCtx>>,
}

impl PlatformHandler {
    fn to_request(raw: &RawRequest) -> Request {
        let (path, query) = match raw.target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (raw.target.as_str(), ""),
        };
        Request {
            method: raw.method.clone(),
            path: path.to_owned(),
            query: parse_query(query),
        }
    }
}

impl HttpHandler for PlatformHandler {
    fn handle(&self, raw: &RawRequest) -> HttpResponse {
        let started = Instant::now();
        let req = Self::to_request(raw);
        let resp = service::handle_cluster(
            &self.state,
            &req,
            Some(&self.metrics),
            self.cluster.as_deref(),
        );
        self.metrics.record(&req.path, started.elapsed());
        let mut out = HttpResponse::json(resp.status, resp.body);
        out.location = resp.location;
        if resp.status == 503 {
            out.retry_after = Some(1);
        }
        out
    }

    fn inline(&self, raw: &RawRequest) -> Option<HttpResponse> {
        // Liveness must answer even while the pool is saturated by solves;
        // it reads no shared state, so it is safe on the reactor thread.
        let path = raw.target.split('?').next().unwrap_or("");
        if raw.method == "GET" && path == "/health" {
            self.metrics.record("/health", Instant::now().elapsed());
            return Some(HttpResponse::json(200, "{\"status\":\"ok\"}".to_owned()));
        }
        // A malformed `priority=` is a client error, not a scheduling
        // hint: answer 400 from the reactor thread so the bogus request
        // never occupies a queue slot at any tier.
        if request_priority(raw).is_err() {
            self.metrics.record(path, Instant::now().elapsed());
            return Some(HttpResponse::error(
                400,
                "query parameter 'priority' must be low, normal, high, or critical",
            ));
        }
        None
    }

    fn priority(&self, raw: &RawRequest) -> u8 {
        // Malformed values were already rejected inline with 400; the
        // fallback here is unreachable in practice and defaults to normal.
        request_priority(raw).unwrap_or(1)
    }
}

/// Map a request's `priority=low|normal|high|critical` query parameter to
/// its queue tier ([`hta_life::TaskPriority`]'s rank). A missing parameter
/// falls back to normal, so it is purely opt-in; a present but
/// unrecognised value is `Err` and the request is rejected with `400`
/// before it is queued. Runs on the reactor thread: a saturated solver
/// pool sheds low-priority requests with `503 Retry-After` before it
/// touches high or critical ones.
fn request_priority(raw: &RawRequest) -> Result<u8, ()> {
    let query = raw.target.split_once('?').map_or("", |(_, q)| q);
    match query.split('&').find_map(|kv| kv.strip_prefix("priority=")) {
        None => Ok(1),
        Some(value) => hta_life::TaskPriority::parse(value)
            .map(hta_life::TaskPriority::rank)
            .ok_or(()),
    }
}

impl Server {
    /// Bind to `addr` (port 0 for an ephemeral port) and serve `state` with
    /// the default sizing ([`ServeOptions::default`]).
    pub fn spawn(addr: &str, state: Arc<PlatformState>) -> io::Result<Server> {
        Self::spawn_with(addr, state, ServeOptions::default())
    }

    /// Bind and serve with explicit reactor/pool sizing.
    pub fn spawn_with(
        addr: &str,
        state: Arc<PlatformState>,
        opts: ServeOptions,
    ) -> io::Result<Server> {
        Self::spawn_with_cluster(addr, state, opts, None)
    }

    /// Bind and serve as a cluster node: the handler consults `cluster`
    /// for role-aware routing (write redirects, `/cluster`, `/shard_topk`)
    /// and, on a primary, publishes to the replication hub after every
    /// successful mutation.
    pub fn spawn_with_cluster(
        addr: &str,
        state: Arc<PlatformState>,
        opts: ServeOptions,
        cluster: Option<Arc<ClusterCtx>>,
    ) -> io::Result<Server> {
        let net_metrics = Arc::new(NetMetrics::default());
        let metrics = Arc::new(ServingMetrics::new(Arc::clone(&net_metrics)));
        let handler = Arc::new(PlatformHandler {
            state,
            metrics: Arc::clone(&metrics),
            cluster,
        });
        let net = NetServer::bind(
            addr,
            handler,
            ServerConfig {
                listen_threads: opts.listen_threads,
                pool_workers: opts.solver_pool,
                queue_capacity: opts.queue_capacity,
                metrics: net_metrics,
            },
        )?;
        Ok(Server { net, metrics })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.net.addr()
    }

    /// The serving counters (also surfaced on `GET /stats`).
    pub fn metrics(&self) -> Arc<ServingMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests (bounded), write the responses out, join every thread.
    pub fn shutdown(mut self) {
        self.net.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_datagen::amt::{generate, AmtConfig};
    use hta_net::client;
    use std::io::{BufReader, Write};
    use std::net::TcpStream;

    fn start() -> (Server, Arc<PlatformState>) {
        let w = generate(&AmtConfig {
            n_groups: 10,
            tasks_per_group: 5,
            vocab_size: 40,
            ..Default::default()
        });
        let state = Arc::new(PlatformState::new(w.space, w.tasks, 3, 11));
        let server = Server::spawn("127.0.0.1:0", Arc::clone(&state)).unwrap();
        (server, state)
    }

    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        method: &str,
        target: &str,
    ) -> (u16, String) {
        stream
            .write_all(&client::request_bytes(method, target, true))
            .unwrap();
        let resp = client::read_response(reader).unwrap();
        (resp.status, resp.body_text())
    }

    #[test]
    fn full_api_flow_over_one_keep_alive_connection() {
        let (server, _state) = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        let (status, body) = roundtrip(&mut stream, &mut reader, "GET", "/health");
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

        let (status, body) = roundtrip(
            &mut stream,
            &mut reader,
            "POST",
            "/register?keywords=english;audio",
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"worker_id\":0"));

        let (status, body) = roundtrip(&mut stream, &mut reader, "POST", "/assign?worker=0");
        assert_eq!(status, 200);
        assert!(body.contains("\"tasks\":["), "{body}");

        let (status, body) = roundtrip(&mut stream, &mut reader, "GET", "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("\"serving\":{"), "{body}");
        assert!(body.contains("\"endpoints\":{"), "{body}");
        assert!(body.contains("\"latency_us\":{"), "{body}");

        let (status, _) = roundtrip(&mut stream, &mut reader, "GET", "/missing");
        assert_eq!(status, 404);

        let metrics = server.metrics();
        assert_eq!(metrics.endpoint_count("/health"), 1);
        assert_eq!(metrics.endpoint_count("/assign"), 1);
        // /health ran inline on the reactor; the other four went to the pool.
        assert_eq!(
            metrics
                .net
                .requests_inline
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        server.shutdown();
    }

    #[test]
    fn batch_assign_endpoint_returns_per_worker_lists() {
        let (server, state) = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for kw in ["english;audio", "english;survey"] {
            let (status, _) = roundtrip(
                &mut stream,
                &mut reader,
                "POST",
                &format!("/register?keywords={kw}"),
            );
            assert_eq!(status, 200);
        }
        let (status, body) = roundtrip(
            &mut stream,
            &mut reader,
            "POST",
            "/assign_batch?workers=0,1",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"assignments\":["), "{body}");
        assert!(body.contains("\"worker\":0"), "{body}");
        assert!(body.contains("\"worker\":1"), "{body}");
        assert_eq!(state.stats().assigned_tasks, 6);

        // Error paths: malformed list, unknown worker, wrong method.
        let (status, _) = roundtrip(
            &mut stream,
            &mut reader,
            "POST",
            "/assign_batch?workers=0,x",
        );
        assert_eq!(status, 400);
        let (status, _) = roundtrip(&mut stream, &mut reader, "POST", "/assign_batch?workers=9");
        assert_eq!(status, 404);
        let (status, _) = roundtrip(&mut stream, &mut reader, "GET", "/assign_batch?workers=0");
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn priority_param_maps_to_queue_tiers() {
        let raw = |target: &str| RawRequest {
            method: "POST".to_owned(),
            target: target.to_owned(),
            keep_alive: true,
        };
        assert_eq!(request_priority(&raw("/assign?worker=0")), Ok(1));
        assert_eq!(
            request_priority(&raw("/assign?worker=0&priority=low")),
            Ok(hta_life::TaskPriority::Low.rank())
        );
        assert_eq!(request_priority(&raw("/assign?priority=normal")), Ok(1));
        assert_eq!(
            request_priority(&raw("/assign?priority=high&worker=0")),
            Ok(hta_life::TaskPriority::High.rank())
        );
        assert_eq!(
            request_priority(&raw("/assign?priority=critical")),
            Ok(hta_life::TaskPriority::Critical.rank())
        );
        // Present-but-unknown values are a client error, not a tier.
        assert_eq!(request_priority(&raw("/assign?priority=bogus")), Err(()));
        assert_eq!(request_priority(&raw("/assign?priority=")), Err(()));
    }

    #[test]
    fn prioritized_requests_round_trip() {
        let (server, _state) = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _) = roundtrip(
            &mut stream,
            &mut reader,
            "POST",
            "/register?keywords=english;audio&priority=critical",
        );
        assert_eq!(status, 200);
        let (status, body) = roundtrip(
            &mut stream,
            &mut reader,
            "POST",
            "/assign?worker=0&priority=low",
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"tasks\":["), "{body}");
        // A malformed priority is rejected up front with 400 — it never
        // reaches the queue, and the connection stays usable.
        let (status, body) = roundtrip(
            &mut stream,
            &mut reader,
            "POST",
            "/assign?worker=0&priority=urgent!!",
        );
        assert_eq!(status, 400);
        assert!(body.contains("priority"), "{body}");
        let (status, _) = roundtrip(&mut stream, &mut reader, "POST", "/assign?worker=0");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_keep_alive_clients_share_state() {
        let (server, state) = start();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let (status, _) = roundtrip(
                        &mut stream,
                        &mut reader,
                        "POST",
                        &format!("/register?keywords=worker{i}"),
                    );
                    assert_eq!(status, 200);
                    // Second request on the same connection.
                    let (status, _) = roundtrip(&mut stream, &mut reader, "GET", "/stats");
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(state.stats().workers, 4);
        server.shutdown();
    }
}
