//! Cluster roles for the serving layer: primary/replica replication and
//! sharded candidate retrieval (DESIGN.md §14).
//!
//! Three roles share one binary:
//!
//! * **primary** — owns the authoritative [`PlatformState`] and the solver.
//!   After every successful mutating operation it publishes its serialized
//!   state to a [`ReplicationHub`], which diffs consecutive snapshots into
//!   epoch-tagged deltas and streams them to attached peers.
//! * **replica** — follows the primary's replication stream, swaps each
//!   update into its local `PlatformState`
//!   ([`PlatformState::replace_from_snapshot_bytes`]), and answers read
//!   traffic (`/stats`, `/topk`, `/candidates`) locally — byte-identically
//!   to the primary at the same epoch, because both hold the same bytes.
//!   Write endpoints bounce to the primary with `307` + `Location`.
//! * **shard worker** — a replica that additionally owns the catalog slice
//!   `task % count == index` and serves `GET /shard_topk`: exact per-worker
//!   top-k over its owned open tasks, scores shipped as `f64` bit patterns.
//!
//! The primary's [`ShardCoordinator`] runs *under the state lock* during an
//! assignment: it publishes the current state (deduplicated, so the epoch
//! only advances if something changed), queries every shard at that pinned
//! epoch, and merges the per-shard lists into the exact global top-k
//! ([`hta_index::merge_topk`]). Any failure — shard down, stale, malformed
//! — falls back to the local index, which by construction produces the same
//! lists, so the fallback changes nothing but latency. Assignment decisions
//! (the one joint solve) never leave the primary.

use std::io;
use std::str::FromStr;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hta_cluster::{http_get, Follower, ReplicaState, ReplicationHub, ShardSpec};
use hta_index::merge_topk;

use crate::snapshot::bytes_from_inner;
use crate::state::{Inner, PlatformState, ShardTopk};

/// Which cluster role this process plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Authoritative state + solver; publishes replication epochs.
    Primary,
    /// Read replica following the primary's snapshot-delta stream.
    Replica,
    /// Replica that also serves shard-local top-k retrieval.
    ShardWorker,
}

impl FromStr for Role {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "primary" => Ok(Role::Primary),
            "replica" => Ok(Role::Replica),
            "shard-worker" => Ok(Role::ShardWorker),
            _ => Err(format!(
                "unknown role {s:?} (want primary, replica, or shard-worker)"
            )),
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Role::Primary => "primary",
            Role::Replica => "replica",
            Role::ShardWorker => "shard-worker",
        })
    }
}

/// The epoch a replica has fully applied to its serving state, with a
/// waitable bump — `GET /shard_topk?epoch=E` blocks (bounded) until the
/// node has caught up to `E` so it answers against exactly the state the
/// primary pinned.
pub struct AppliedEpoch {
    epoch: Mutex<u64>,
    bump: Condvar,
}

impl Default for AppliedEpoch {
    fn default() -> Self {
        Self::new()
    }
}

impl AppliedEpoch {
    /// Epoch 0: nothing applied yet.
    pub fn new() -> Self {
        Self {
            epoch: Mutex::new(0),
            bump: Condvar::new(),
        }
    }

    /// Record that `epoch` is now fully applied (monotone; stale sets are
    /// ignored) and wake waiters.
    pub fn set(&self, epoch: u64) {
        let mut held = self.epoch.lock().expect("epoch lock");
        if epoch > *held {
            *held = epoch;
            self.bump.notify_all();
        }
    }

    /// The currently applied epoch.
    pub fn get(&self) -> u64 {
        *self.epoch.lock().expect("epoch lock")
    }

    /// Wait until the applied epoch reaches `at_least` or `timeout`
    /// elapses; returns the applied epoch either way.
    pub fn wait_for(&self, at_least: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut held = self.epoch.lock().expect("epoch lock");
        while *held < at_least {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let (guard, _) = self.bump.wait_timeout(held, left).expect("epoch lock");
            held = guard;
        }
        *held
    }
}

/// Per-node cluster configuration handed to the HTTP layer.
pub struct ClusterCtx {
    /// This node's role.
    pub role: Role,
    /// Primary only: the replication hub peers attach to.
    pub hub: Option<Arc<ReplicationHub>>,
    /// Replica/shard: the primary's HTTP address (`host:port`) write
    /// endpoints redirect to.
    pub primary_http: Option<String>,
    /// Replica/shard: the epoch applied to the local serving state.
    pub applied: Arc<AppliedEpoch>,
    /// Shard worker: the catalog slice this node owns.
    pub shard: Option<ShardSpec>,
}

impl ClusterCtx {
    /// Context for a primary publishing through `hub`.
    pub fn primary(hub: Arc<ReplicationHub>) -> Self {
        Self {
            role: Role::Primary,
            hub: Some(hub),
            primary_http: None,
            applied: Arc::new(AppliedEpoch::new()),
            shard: None,
        }
    }

    /// Context for a read replica redirecting writes to `primary_http`.
    pub fn replica(primary_http: String, applied: Arc<AppliedEpoch>) -> Self {
        Self {
            role: Role::Replica,
            hub: None,
            primary_http: Some(primary_http),
            applied,
            shard: None,
        }
    }

    /// Context for a shard worker owning `shard`.
    pub fn shard_worker(
        primary_http: String,
        applied: Arc<AppliedEpoch>,
        shard: ShardSpec,
    ) -> Self {
        Self {
            role: Role::ShardWorker,
            hub: None,
            primary_http: Some(primary_http),
            applied,
            shard: Some(shard),
        }
    }

    /// The epoch this node reports on `GET /cluster`: the hub's head on a
    /// primary, the applied epoch on a follower.
    pub fn epoch(&self) -> u64 {
        match &self.hub {
            Some(hub) => hub.epoch(),
            None => self.applied.get(),
        }
    }
}

/// How long the coordinator waits on each shard before falling back to
/// local retrieval. Also the bound a shard worker waits for a pinned epoch.
pub const SHARD_TIMEOUT: Duration = Duration::from_secs(2);

/// The primary-side [`ShardTopk`] implementation: pin an epoch, fan the
/// cohort's retrieval out to the shard workers, merge exactly.
struct ShardCoordinator {
    hub: Arc<ReplicationHub>,
    shards: Vec<String>,
    timeout: Duration,
}

impl ShardTopk for ShardCoordinator {
    fn worker_topk(
        &self,
        inner: &Inner,
        cohort: &[usize],
        k: usize,
    ) -> Option<Vec<Vec<(u32, f64)>>> {
        if self.shards.is_empty() || cohort.is_empty() {
            return None;
        }
        // Publish the state we hold the lock on. Identical bytes do not
        // advance the epoch, so repeated assigns between mutations pin the
        // same epoch; and no newer epoch can appear while we hold the lock,
        // so the shards' answers are against exactly this state.
        let epoch = self.hub.publish(bytes_from_inner(inner));
        let workers: Vec<String> = cohort.iter().map(usize::to_string).collect();
        let target = format!(
            "/shard_topk?epoch={epoch}&workers={}&k={k}",
            workers.join(",")
        );
        let mut per_shard: Vec<Vec<Vec<(u32, f64)>>> = Vec::with_capacity(self.shards.len());
        for addr in &self.shards {
            let resp = http_get(addr, &target, self.timeout).ok()?;
            if resp.status != 200 {
                return None;
            }
            per_shard.push(parse_shard_lists(&resp.body_text(), cohort.len())?);
        }
        Some(
            (0..cohort.len())
                .map(|wi| {
                    let lists: Vec<Vec<(u32, f64)>> =
                        per_shard.iter().map(|s| s[wi].clone()).collect();
                    merge_topk(&lists, k)
                })
                .collect(),
        )
    }
}

/// Install the shard coordinator on a primary's state: assignment-time
/// candidate retrieval fans out to the shard workers at `shards` (HTTP
/// addresses), with identity-safe fallback to the local index.
pub fn install_shard_coordinator(
    state: &PlatformState,
    hub: Arc<ReplicationHub>,
    shards: Vec<String>,
) {
    state.set_shard_topk(Some(Arc::new(ShardCoordinator {
        hub,
        shards,
        timeout: SHARD_TIMEOUT,
    })));
}

/// Render per-worker top-k lists as the `/shard_topk` response body.
/// Scores travel as `u64` bit patterns (`f64::to_bits`) so retrieval stays
/// bit-identical across the wire — a decimal rendering would not.
pub fn encode_shard_lists(epoch: u64, lists: &[Vec<(u32, f64)>]) -> String {
    use std::fmt::Write as _;
    let mut body = format!("{{\"epoch\":{epoch},\"lists\":[");
    for (i, list) in lists.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('[');
        for (j, (task, score)) in list.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            let _ = write!(body, "[{task},{}]", score.to_bits());
        }
        body.push(']');
    }
    body.push_str("]}");
    body
}

/// Parse [`encode_shard_lists`] output back into per-worker lists.
/// Returns `None` (coordinator falls back to local retrieval) on any
/// malformation or a list count other than `expect`.
pub fn parse_shard_lists(body: &str, expect: usize) -> Option<Vec<Vec<(u32, f64)>>> {
    let rest = body.split_once("\"lists\":")?.1.as_bytes();
    let mut cur = Cursor { b: rest, i: 0 };
    cur.expect(b'[')?;
    let mut lists = Vec::new();
    if cur.peek()? == b']' {
        cur.expect(b']')?;
    } else {
        loop {
            cur.expect(b'[')?;
            let mut list = Vec::new();
            if cur.peek()? == b']' {
                cur.expect(b']')?;
            } else {
                loop {
                    cur.expect(b'[')?;
                    let task = cur.number()?;
                    cur.expect(b',')?;
                    let bits = cur.number()?;
                    cur.expect(b']')?;
                    list.push((u32::try_from(task).ok()?, f64::from_bits(bits)));
                    if cur.peek()? == b',' {
                        cur.expect(b',')?;
                    } else {
                        cur.expect(b']')?;
                        break;
                    }
                }
            }
            lists.push(list);
            if cur.peek()? == b',' {
                cur.expect(b',')?;
            } else {
                cur.expect(b']')?;
                break;
            }
        }
    }
    (lists.len() == expect).then_some(lists)
}

/// A strict byte cursor for the rigid `/shard_topk` grammar.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Option<()> {
        if self.peek()? == c {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<u64> {
        let start = self.i;
        while self.peek()?.is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }
}

/// Block until this node holds a full platform state: restored from the
/// journal when it carries one, otherwise fetched from the primary's
/// replication listener at `join` (retrying until `deadline` — the primary
/// may not be up yet).
pub fn acquire_initial_state(
    join: &str,
    rstate: &mut ReplicaState,
    deadline: Duration,
) -> Result<PlatformState, String> {
    if rstate.epoch > 0 {
        if let Ok(state) = PlatformState::from_snapshot_bytes(&rstate.bytes) {
            return Ok(state);
        }
    }
    let start = Instant::now();
    loop {
        if let Ok(mut follower) = Follower::connect(join, rstate.epoch) {
            follower.set_read_timeout(Some(Duration::from_secs(5))).ok();
            while let Ok(update) = follower.next_update() {
                let _ = rstate.apply(update);
                if rstate.epoch > 0 {
                    if let Ok(state) = PlatformState::from_snapshot_bytes(&rstate.bytes) {
                        return Ok(state);
                    }
                }
            }
        }
        if start.elapsed() > deadline {
            return Err(format!("no initial state from {join} within {deadline:?}"));
        }
        thread::sleep(Duration::from_millis(200));
    }
}

/// Keep a follower converged forever: apply every update off the wire,
/// swap it into `state`, bump `applied`. Reconnects with backoff on any
/// connection or apply error, re-handshaking from the epoch it holds —
/// the hub ships the covering delta chain or one full snapshot, so a
/// restarted or lagging follower always converges to byte-identical state.
pub fn spawn_follower(
    join: String,
    mut rstate: ReplicaState,
    state: Arc<PlatformState>,
    applied: Arc<AppliedEpoch>,
) -> JoinHandle<()> {
    applied.set(rstate.epoch);
    thread::spawn(move || loop {
        let Ok(mut follower) = Follower::connect(&join, rstate.epoch) else {
            thread::sleep(Duration::from_millis(200));
            continue;
        };
        follower
            .set_read_timeout(Some(Duration::from_millis(500)))
            .ok();
        loop {
            match follower.next_update() {
                Ok(update) => {
                    // Any refusal (epoch gap, bad delta) or swap failure
                    // breaks to a re-handshake from the held epoch.
                    if rstate.apply(update).is_err()
                        || state.replace_from_snapshot_bytes(&rstate.bytes).is_err()
                    {
                        break;
                    }
                    applied.set(rstate.epoch);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => break,
            }
        }
        thread::sleep(Duration::from_millis(100));
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_parses_and_prints() {
        assert_eq!("primary".parse::<Role>().unwrap(), Role::Primary);
        assert_eq!("replica".parse::<Role>().unwrap(), Role::Replica);
        assert_eq!("shard-worker".parse::<Role>().unwrap(), Role::ShardWorker);
        assert!("leader".parse::<Role>().is_err());
        assert_eq!(Role::ShardWorker.to_string(), "shard-worker");
    }

    #[test]
    fn shard_list_wire_format_round_trips_bit_exactly() {
        let lists: Vec<Vec<(u32, f64)>> = vec![
            vec![
                (3, 0.625),
                (17, 0.1234567890123_f64),
                (0, f64::MIN_POSITIVE),
            ],
            vec![],
            vec![(42, 1.0)],
        ];
        let body = encode_shard_lists(9, &lists);
        assert!(body.starts_with("{\"epoch\":9,"));
        let parsed = parse_shard_lists(&body, 3).expect("parse");
        assert_eq!(parsed.len(), 3);
        for (p, l) in parsed.iter().zip(&lists) {
            assert_eq!(p.len(), l.len());
            for (a, b) in p.iter().zip(l) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "score bits must survive");
            }
        }
        // Wrong expected count and malformed bodies are refused, not
        // mis-parsed.
        assert!(parse_shard_lists(&body, 2).is_none());
        assert!(parse_shard_lists("{\"lists\":[[[1]]]}", 1).is_none());
        assert!(parse_shard_lists("{\"nope\":[]}", 0).is_none());
        assert!(parse_shard_lists("{\"lists\":[]}", 0).is_some());
    }

    #[test]
    fn applied_epoch_waits_and_stays_monotone() {
        let applied = Arc::new(AppliedEpoch::new());
        assert_eq!(applied.get(), 0);
        applied.set(4);
        applied.set(2); // stale: ignored
        assert_eq!(applied.get(), 4);
        assert_eq!(applied.wait_for(4, Duration::from_millis(1)), 4);
        // A waiter is released when another thread bumps past its target.
        let a = Arc::clone(&applied);
        let waiter = thread::spawn(move || a.wait_for(7, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        applied.set(7);
        assert_eq!(waiter.join().unwrap(), 7);
        // Timeout returns what is applied, not a hang.
        assert_eq!(applied.wait_for(99, Duration::from_millis(10)), 7);
    }
}
