//! The platform's shared state: the task pool, registered workers with
//! their adaptive weight estimators, the sharded keyword index over open
//! tasks, and the assignment ledger — the data behind the Figure 4 workflow.

use std::sync::{Arc, Mutex};

use hta_core::adaptive::WeightEstimator;
use hta_core::solver::{
    solve_open_subset_sparse_warm, solve_open_subset_warm, HtaGre, SparseWarmState, WarmState,
};
use hta_core::{
    keywords_fingerprint, DiversityEdgeCache, Instance, Jaccard, KeywordSpace, KeywordVec,
    SparseEdgeCache, Task, TaskId, TaskPool, Weights, Worker, WorkerId,
};
use hta_index::{
    CandidateMode, CandidatePool, InvertedIndex, PoolMaintainer, PoolParams, ShardedIndex,
};
use hta_life::Reputation;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A registered worker session.
pub(crate) struct WorkerState {
    pub(crate) keywords: KeywordVec,
    pub(crate) estimator: WeightEstimator,
    /// Catalog indices currently assigned and not yet completed.
    pub(crate) assigned: Vec<usize>,
    /// Catalog indices completed, in order.
    pub(crate) completed: Vec<usize>,
    /// Verification track record, folded in on `/complete`. Observational
    /// only at the serving layer: it never feeds the estimator, the solver,
    /// or the RNG stream, so enabling or ignoring outcomes cannot change
    /// assignments.
    pub(crate) reputation: Reputation,
}

/// Result of an assignment call.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignResult {
    /// Newly assigned catalog task indices.
    pub tasks: Vec<usize>,
    /// The diversity weight used for the solve.
    pub alpha: f64,
    /// The relevance weight used for the solve.
    pub beta: f64,
}

/// Result of a completion call.
#[derive(Debug, Clone, PartialEq)]
pub struct CompleteResult {
    /// Updated diversity-weight estimate after observing the completion.
    pub alpha: f64,
    /// Updated relevance-weight estimate after observing the completion.
    pub beta: f64,
    /// Tasks remaining on the worker's display.
    pub remaining: usize,
}

/// Aggregate statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Registered workers.
    pub workers: usize,
    /// Open (unassigned) tasks.
    pub open_tasks: usize,
    /// Assigned-but-not-completed tasks.
    pub assigned_tasks: usize,
    /// Completed tasks.
    pub completed_tasks: usize,
    /// Open tasks currently held by the keyword index (always equals
    /// `open_tasks` — surfaced so operators can spot index drift).
    pub indexed_tasks: usize,
    /// Per-shard `(task, keyword)` membership counts of the keyword index.
    /// Every open task contributes one count per keyword to the shard owning
    /// that keyword, so the sum is the total posting count (≥
    /// `indexed_tasks`); a persistently empty shard means the keyword
    /// universe is skewed away from its range.
    pub shard_sizes: Vec<usize>,
    /// The dense edge-cache catalog cap in effect (flag override, else
    /// `HTA_EDGE_CACHE_CAP`, else the built-in default). Catalogs past it
    /// serve through the sparse pool-scoped pipeline instead.
    pub edge_cache_cap: usize,
}

/// Errors surfaced to the HTTP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Unknown worker id.
    UnknownWorker(usize),
    /// The task is not on the worker's display.
    NotAssigned {
        /// The worker that reported the completion.
        worker: usize,
        /// The task that was not on their display.
        task: usize,
    },
    /// A keyword list was empty.
    NoKeywords,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            Self::NotAssigned { worker, task } => {
                write!(f, "task {task} is not assigned to worker {worker}")
            }
            Self::NoKeywords => write!(f, "at least one keyword is required"),
        }
    }
}

/// The cluster seam for candidate retrieval: resolves a cohort's
/// per-worker top-k lists through shard workers instead of the local
/// index. Implemented by the coordinator in [`crate::cluster`]; installed
/// only on a sharded primary. Returning `None` (any shard unreachable,
/// stale, or malformed) falls back to the local index — which produces the
/// *same* lists, so the fallback is identity-safe, not best-effort.
///
/// Called with the inner lock held: the implementation may serialize
/// `inner` to publish a replication epoch, pinning the exact state shards
/// must answer against.
pub(crate) trait ShardTopk: Send + Sync {
    /// Exact global top-k `(task, score)` per cohort member, or `None` to
    /// fall back to local retrieval.
    fn worker_topk(
        &self,
        inner: &Inner,
        cohort: &[usize],
        k: usize,
    ) -> Option<Vec<Vec<(u32, f64)>>>;
}

/// The platform state; all methods are thread-safe.
pub struct PlatformState {
    inner: Mutex<Inner>,
    /// Optional shard coordinator (primary of a sharded cluster only).
    /// Outside `inner` so installing it never contends with serving, and
    /// the `Arc` is cloned out before `inner` is locked.
    coord: Mutex<Option<Arc<dyn ShardTopk>>>,
}

pub(crate) struct Inner {
    pub(crate) space: KeywordSpace,
    pub(crate) tasks: TaskPool,
    pub(crate) available: Vec<bool>,
    pub(crate) workers: Vec<WorkerState>,
    pub(crate) rng: StdRng,
    pub(crate) xmax: usize,
    /// Cap on the open-task window per solve (dense mode only).
    pub(crate) max_instance_tasks: usize,
    /// Sharded keyword index over the open tasks, maintained incrementally
    /// across register/assign — never rebuilt from the catalog per request.
    pub(crate) index: ShardedIndex,
    pub(crate) mode: CandidateMode,
    /// Thread count handed to the solver pipeline (`0` = auto).
    pub(crate) solver_threads: usize,
    /// Catalog-level positive-diversity edge list, built lazily on the
    /// first solve (small catalogs only) and reused by every solve after
    /// it. Deliberately **not** serialized: snapshot bytes stay identical
    /// to the pre-cache format and a restored server rebuilds on first
    /// use, with byte-identical solver output either way.
    pub(crate) edge_cache: Option<DiversityEdgeCache>,
    /// Warm-start state carried between solves: the previous solve's
    /// greedy matching over the cached catalog edges, repaired
    /// incrementally as the open set churns. Like the edge cache it is
    /// derived state — never serialized, rebuilt lazily after a restore —
    /// and the solver output is byte-identical with or without it.
    pub(crate) warm: Option<WarmState>,
    /// Operator toggle for the warm path (default on; purely a
    /// performance knob, output is unaffected).
    pub(crate) warm_start: bool,
    /// Requested dense edge-cache catalog cap (`0` = auto:
    /// `HTA_EDGE_CACHE_CAP` or the built-in default). Set by the
    /// `--edge-cache-cap` server flag; the resolved value is shown in
    /// `/stats`.
    pub(crate) edge_cache_cap: usize,
    /// Incremental candidate-pool maintainer for the sparse warm-start
    /// pipeline (top-k mode past the dense cap). Derived state — never
    /// serialized; rebuilt lazily after a restore with byte-identical
    /// assignments.
    pub(crate) pool_maint: Option<PoolMaintainer>,
    /// Pool-scoped sparse diversity edge cache (paired with `pool_maint`).
    pub(crate) sparse_cache: Option<SparseEdgeCache>,
    /// Warm matching state over the sparse edges.
    pub(crate) sparse_warm: Option<SparseWarmState>,
}

impl Inner {
    /// Build the catalog-level diversity-edge cache on first use.
    ///
    /// Above the configured catalog-size cap
    /// ([`hta_core::edges::edge_cache_cap`], overridable via
    /// `HTA_EDGE_CACHE_CAP`) the cache's O(n²) build time and memory are
    /// not worth holding; solves fall back to per-instance enumeration.
    ///
    /// Soundness: the task catalog never mutates after construction, and
    /// keyword-space widening only appends zero bits to task vectors —
    /// Jaccard counts are unchanged — so a cache built over the original
    /// stored vectors stays bit-exact for every later (possibly widened)
    /// sub-instance. Both candidate paths produce strictly ascending
    /// catalog indices (`Full` filters an ascending range, `TopK` pools
    /// sort their members), which [`solve_open_subset_warm`] verifies
    /// before reusing the edges or the warm matching.
    fn ensure_edge_cache(&mut self) {
        if self.edge_cache.is_none() && self.tasks.len() <= self.resolved_edge_cache_cap() {
            self.edge_cache = Some(DiversityEdgeCache::build(
                self.tasks.tasks(),
                &Jaccard,
                hta_par::solver_threads(self.solver_threads),
            ));
        }
        if self.warm_start && self.warm.is_none() {
            if let Some(cache) = &self.edge_cache {
                self.warm = Some(WarmState::new(cache));
            }
        }
    }

    /// The dense edge-cache catalog cap in effect: the configured override
    /// when set, else `HTA_EDGE_CACHE_CAP`, else the built-in default.
    pub(crate) fn resolved_edge_cache_cap(&self) -> usize {
        hta_core::edges::edge_cache_cap(self.edge_cache_cap)
    }

    /// The sparse warm-start pipeline's retrieval depth, `Some(k)` iff the
    /// pipeline applies: warm solves on, top-k candidates, and a catalog
    /// past the dense edge-cache cap (where `ensure_edge_cache` would
    /// decline to build).
    fn sparse_mode_k(&self) -> Option<usize> {
        match self.mode {
            CandidateMode::TopK(k)
                if self.warm_start && self.tasks.len() > self.resolved_edge_cache_cap() =>
            {
                Some(k)
            }
            _ => None,
        }
    }

    /// Make the sparse components exist and match retrieval depth `k`.
    fn ensure_sparse(&mut self, k: usize) {
        if self.pool_maint.as_ref().is_some_and(|m| m.k() == k) && self.sparse_cache.is_some() {
            return;
        }
        let fp = keywords_fingerprint(self.tasks.tasks().iter().map(|t| &t.keywords));
        self.pool_maint = Some(PoolMaintainer::new(k));
        self.sparse_cache = Some(SparseEdgeCache::new(fp, self.tasks.len()));
        self.sparse_warm = None;
    }

    /// Refresh the sparse edge cache to exactly `members` (weights computed
    /// only for pairs touching added members) and make warm matching state
    /// exist. Weights run over the *stored* task vectors: widening appends
    /// zero bits, which changes no popcount, so they are bit-equal to the
    /// pool instance's diversity values.
    fn refresh_sparse(&mut self, members: &[u32]) {
        let tasks = &self.tasks;
        let weight = |u: u32, v: u32| {
            hta_core::kernels::jaccard_distance(
                &tasks.get(TaskId(u)).keywords,
                &tasks.get(TaskId(v)).keywords,
            )
        };
        let cache = self.sparse_cache.as_mut().expect("ensured by the caller");
        cache.refresh(members, weight);
        if self.sparse_warm.is_none() {
            self.sparse_warm = Some(SparseWarmState::new(cache));
        }
    }

    /// Take a task off the open pool: availability, the keyword index, and
    /// (when active) the maintained per-worker top-k lists stay in sync.
    pub(crate) fn close_task(&mut self, ci: usize) {
        self.available[ci] = false;
        self.index.remove(ci as u32);
        if let Some(m) = self.pool_maint.as_mut() {
            m.apply_remove(ci as u32);
        }
    }
}

impl PlatformState {
    /// Build over a task corpus. `xmax` is the per-assignment size. Uses
    /// sparse top-k candidate generation by default; see
    /// [`PlatformState::with_mode`].
    pub fn new(space: KeywordSpace, tasks: TaskPool, xmax: usize, seed: u64) -> Self {
        Self::with_mode(space, tasks, xmax, seed, CandidateMode::default())
    }

    /// Build with an explicit candidate-generation mode
    /// ([`CandidateMode::Full`] reproduces the dense open-task window).
    pub fn with_mode(
        space: KeywordSpace,
        tasks: TaskPool,
        xmax: usize,
        seed: u64,
        mode: CandidateMode,
    ) -> Self {
        Self::with_options(space, tasks, xmax, seed, mode, 0, 0)
    }

    /// Build with an explicit mode, keyword-shard count (`0` = auto:
    /// `HTA_INDEX_SHARDS` or the thread default), and solver thread count
    /// (`0` = auto: `HTA_SOLVER_THREADS` or the hardware default; solver
    /// output is byte-identical at any value).
    pub fn with_options(
        space: KeywordSpace,
        tasks: TaskPool,
        xmax: usize,
        seed: u64,
        mode: CandidateMode,
        shards: usize,
        solver_threads: usize,
    ) -> Self {
        let available = vec![true; tasks.len()];
        let pairs: Vec<(u32, &KeywordVec)> = tasks
            .tasks()
            .iter()
            .map(|t| (t.id.0, &t.keywords))
            .collect();
        let index = ShardedIndex::build(space.len(), &pairs, shards);
        Self {
            inner: Mutex::new(Inner {
                space,
                tasks,
                available,
                workers: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                xmax,
                max_instance_tasks: 1200,
                index,
                mode,
                solver_threads,
                edge_cache: None,
                warm: None,
                warm_start: true,
                edge_cache_cap: 0,
                pool_maint: None,
                sparse_cache: None,
                sparse_warm: None,
            }),
            coord: Mutex::new(None),
        }
    }

    /// Run `f` against the locked inner state (snapshot encoding).
    pub(crate) fn with_inner<T>(&self, f: impl FnOnce(&Inner) -> T) -> T {
        f(&self.inner.lock().expect("state lock"))
    }

    /// Rehydrate from fully-validated inner state (snapshot restore).
    pub(crate) fn from_inner(inner: Inner) -> Self {
        Self {
            inner: Mutex::new(inner),
            coord: Mutex::new(None),
        }
    }

    /// Swap the entire inner state for `fresh`'s (replica apply path). Any
    /// installed shard coordinator is kept — it is node configuration, not
    /// replicated state.
    pub(crate) fn replace_with(&self, fresh: PlatformState) {
        let inner = fresh.inner.into_inner().expect("fresh state lock");
        *self.inner.lock().expect("state lock") = inner;
    }

    /// Install (or clear) the shard coordinator consulted by assignment
    /// candidate retrieval.
    pub(crate) fn set_shard_topk(&self, coord: Option<Arc<dyn ShardTopk>>) {
        *self.coord.lock().expect("coordinator lock") = coord;
    }

    /// Clone out the installed coordinator, if any. Must be called
    /// *before* locking `inner` (the coordinator is invoked under the
    /// inner lock, and taking the locks in a fixed order avoids deadlock).
    fn shard_topk_coord(&self) -> Option<Arc<dyn ShardTopk>> {
        self.coord.lock().expect("coordinator lock").clone()
    }

    /// Switch the candidate-generation mode at runtime (the index is kept
    /// in sync regardless of mode, so switching is safe mid-stream).
    pub fn set_candidate_mode(&self, mode: CandidateMode) {
        let mut inner = self.inner.lock().expect("state lock");
        inner.mode = mode;
        // The sparse pipeline is scoped to one retrieval depth; it
        // re-materializes lazily under the new mode (derived state, so
        // dropping it never changes assignments).
        inner.pool_maint = None;
        inner.sparse_cache = None;
        inner.sparse_warm = None;
    }

    /// The active candidate-generation mode.
    pub fn candidate_mode(&self) -> CandidateMode {
        self.inner.lock().expect("state lock").mode
    }

    /// Toggle warm-started solves at runtime (default on). Purely a
    /// performance knob: the warm path repairs the previous solve's
    /// greedy matching instead of rebuilding it, with byte-identical
    /// assignments either way, so flipping mid-stream is always safe.
    /// Disabling drops the carried state; re-enabling rebuilds it lazily
    /// on the next solve.
    pub fn set_warm_start(&self, enabled: bool) {
        let mut inner = self.inner.lock().expect("state lock");
        inner.warm_start = enabled;
        if !enabled {
            inner.warm = None;
            inner.pool_maint = None;
            inner.sparse_cache = None;
            inner.sparse_warm = None;
        }
    }

    /// Whether warm-started solves are enabled.
    pub fn warm_start(&self) -> bool {
        self.inner.lock().expect("state lock").warm_start
    }

    /// Override the dense edge-cache catalog cap (`0` = auto:
    /// `HTA_EDGE_CACHE_CAP`, then the built-in default). Node
    /// configuration, like the shard coordinator: not replicated and not
    /// serialized — the server re-applies its flag after a restore. When
    /// the catalog no longer fits the new cap, the dense cache and its warm
    /// state are dropped so the sparse pipeline can take over; assignments
    /// are byte-identical either way.
    pub fn set_edge_cache_cap(&self, cap: usize) {
        let mut inner = self.inner.lock().expect("state lock");
        inner.edge_cache_cap = cap;
        if inner.tasks.len() > inner.resolved_edge_cache_cap() {
            inner.edge_cache = None;
            inner.warm = None;
        }
    }

    /// The dense edge-cache catalog cap in effect (shown in `/stats`).
    pub fn edge_cache_cap(&self) -> usize {
        self.inner
            .lock()
            .expect("state lock")
            .resolved_edge_cache_cap()
    }

    /// Register a worker by keyword names (unknown keywords are interned).
    /// Returns the new worker id.
    pub fn register_worker(&self, keywords: &[&str]) -> Result<usize, StateError> {
        if keywords.is_empty() {
            return Err(StateError::NoKeywords);
        }
        let mut inner = self.inner.lock().expect("state lock");
        for kw in keywords {
            inner.space.intern(kw);
        }
        // Keyword ids are stable, so a wider universe just means new empty
        // posting lists — O(new keywords), not a rebuild.
        let width = inner.space.len();
        inner.index.widen(width);
        let vec = inner.space.vector_of_known(keywords);
        // The universe may have widened; vectors built per-request use the
        // current width, and task vectors are widened lazily at solve time.
        let id = inner.workers.len();
        inner.workers.push(WorkerState {
            keywords: vec,
            estimator: WeightEstimator::new(Weights::balanced()),
            assigned: Vec::new(),
            completed: Vec::new(),
            reputation: Reputation::new(),
        });
        Ok(id)
    }

    /// Assign a fresh set of tasks to `worker` by solving HTA with the
    /// worker's current weight estimate (Figure 4's "Solve HTA" box, for a
    /// singleton worker batch).
    pub fn assign(&self, worker: usize) -> Result<AssignResult, StateError> {
        let coord = self.shard_topk_coord();
        let mut guard = self.inner.lock().expect("state lock");
        Self::assign_locked(&mut guard, worker, coord.as_deref())
    }

    /// One singleton assignment against already-locked state; the shared
    /// body of [`PlatformState::assign`] and
    /// [`PlatformState::assign_batch_sequential`].
    fn assign_locked(
        inner: &mut Inner,
        worker: usize,
        coord: Option<&dyn ShardTopk>,
    ) -> Result<AssignResult, StateError> {
        if worker >= inner.workers.len() {
            return Err(StateError::UnknownWorker(worker));
        }
        let weights = inner.workers[worker].estimator.estimate();
        let width = inner.space.len();
        let wkw = if inner.workers[worker].keywords.nbits() == width {
            inner.workers[worker].keywords.clone()
        } else {
            inner.space.widen(&inner.workers[worker].keywords)
        };

        // Candidate selection: the sparse path retrieves this worker's
        // top-k open tasks from the inverted index and tops the pool up to
        // the feasibility floor; the dense path windows the whole open set.
        let open: Vec<usize> = match inner.mode {
            CandidateMode::Full => (0..inner.available.len())
                .filter(|&i| inner.available[i])
                .take(inner.max_instance_tasks)
                .collect(),
            CandidateMode::TopK(k) => {
                let sparse = inner.sparse_mode_k() == Some(k);
                if sparse {
                    inner.ensure_sparse(k);
                }
                let pool = match coord.and_then(|c| c.worker_topk(inner, &[worker], k)) {
                    Some(lists) => {
                        CandidatePool::from_worker_topk(&inner.index, &lists, inner.xmax)
                    }
                    None if sparse => {
                        // Incremental pool: the maintainer absorbed the
                        // churn since the last solve, byte-identical to
                        // `generate` over the live index.
                        let cohort_kw = [(worker as u64, &wkw)];
                        let maint = inner.pool_maint.as_mut().expect("ensured above");
                        let (pool, _delta) = maint.pool_for(&inner.index, &cohort_kw, inner.xmax);
                        pool
                    }
                    None => {
                        let probe = Worker::new(WorkerId(0), wkw.clone()).with_weights(weights);
                        CandidatePool::generate(
                            &inner.index,
                            &[probe],
                            inner.xmax,
                            &PoolParams::with_k(k),
                        )
                    }
                };
                if sparse {
                    inner.refresh_sparse(pool.members());
                }
                pool.members().iter().map(|&t| t as usize).collect()
            }
        };
        if open.is_empty() {
            return Ok(AssignResult {
                tasks: Vec::new(),
                alpha: weights.alpha(),
                beta: weights.beta(),
            });
        }
        let local_tasks: Vec<Task> = open
            .iter()
            .enumerate()
            .map(|(li, &ci)| {
                let t = inner.tasks.get(TaskId(ci as u32));
                let kw = if t.keywords.nbits() == width {
                    t.keywords.clone()
                } else {
                    inner.space.widen(&t.keywords)
                };
                Task::new(TaskId(li as u32), t.group, kw)
            })
            .collect();
        let local_workers = vec![Worker::new(WorkerId(0), wkw).with_weights(weights)];
        let xmax = inner.xmax;
        let inst = Instance::new(local_tasks, local_workers, xmax)
            .expect("constructed instances are well-formed");
        let solver = HtaGre::structured()
            .without_flip()
            .with_threads(inner.solver_threads);
        let out = if inner.sparse_mode_k().is_some() {
            // Sparse warm pipeline: the cache was refreshed to exactly this
            // pool above; repair the carried matching over its edges.
            solve_open_subset_sparse_warm(
                &solver,
                &inst,
                &open,
                inner.sparse_cache.as_ref(),
                inner.sparse_warm.as_mut(),
                &mut inner.rng,
            )
        } else {
            inner.ensure_edge_cache();
            solve_open_subset_warm(
                &solver,
                &inst,
                &open,
                inner.edge_cache.as_ref(),
                inner.warm.as_mut(),
                &mut inner.rng,
            )
        };

        let mut assigned = Vec::new();
        for &local in out.assignment.tasks_of(0) {
            let ci = open[local];
            inner.close_task(ci);
            assigned.push(ci);
        }
        inner.workers[worker].assigned.extend(&assigned);
        Ok(AssignResult {
            tasks: assigned,
            alpha: weights.alpha(),
            beta: weights.beta(),
        })
    }

    /// Assign fresh task sets to a whole `cohort` with **one** shared
    /// candidate pool and **one** joint multi-worker solve (Figure 4's
    /// "Solve HTA" box for a true batch), instead of paying a full
    /// generate-and-solve per worker. Diversity edges come from the
    /// catalog-level cache when available, so the per-request cost is one
    /// filtered edge scan rather than an `O(|T'|²)` enumeration.
    ///
    /// Solver constraint C2 keeps the per-worker task sets disjoint.
    /// Returns one [`AssignResult`] per cohort entry, in order; an unknown
    /// worker id anywhere in the cohort fails the whole call before any
    /// state changes.
    pub fn assign_batch(&self, cohort: &[usize]) -> Result<Vec<AssignResult>, StateError> {
        let coord = self.shard_topk_coord();
        let mut guard = self.inner.lock().expect("state lock");
        let inner = &mut *guard;
        for &w in cohort {
            if w >= inner.workers.len() {
                return Err(StateError::UnknownWorker(w));
            }
        }
        if cohort.is_empty() {
            return Ok(Vec::new());
        }
        let width = inner.space.len();
        let mut weights = Vec::with_capacity(cohort.len());
        let mut local_workers = Vec::with_capacity(cohort.len());
        for (li, &w) in cohort.iter().enumerate() {
            let est = inner.workers[w].estimator.estimate();
            let kw = if inner.workers[w].keywords.nbits() == width {
                inner.workers[w].keywords.clone()
            } else {
                inner.space.widen(&inner.workers[w].keywords)
            };
            weights.push(est);
            local_workers.push(Worker::new(WorkerId(li as u32), kw).with_weights(est));
        }
        // One shared candidate pool for the whole cohort: the sparse path
        // unions every member's top-k and tops up to the joint feasibility
        // floor `min(|open|, |cohort|·xmax)`.
        let open: Vec<usize> = match inner.mode {
            CandidateMode::Full => (0..inner.available.len())
                .filter(|&i| inner.available[i])
                .take(inner.max_instance_tasks)
                .collect(),
            CandidateMode::TopK(k) => {
                let sparse = inner.sparse_mode_k() == Some(k);
                if sparse {
                    inner.ensure_sparse(k);
                }
                let pool = match coord
                    .as_deref()
                    .and_then(|c| c.worker_topk(inner, cohort, k))
                {
                    Some(lists) => {
                        CandidatePool::from_worker_topk(&inner.index, &lists, inner.xmax)
                    }
                    None if sparse => {
                        // Incremental pool over the whole cohort, using the
                        // same (widened) keyword vectors `generate` would.
                        let cohort_kw: Vec<(u64, &KeywordVec)> = cohort
                            .iter()
                            .zip(&local_workers)
                            .map(|(&w, lw)| (w as u64, &lw.keywords))
                            .collect();
                        let maint = inner.pool_maint.as_mut().expect("ensured above");
                        let (pool, _delta) = maint.pool_for(&inner.index, &cohort_kw, inner.xmax);
                        pool
                    }
                    None => CandidatePool::generate(
                        &inner.index,
                        &local_workers,
                        inner.xmax,
                        &PoolParams::with_k(k),
                    ),
                };
                if sparse {
                    inner.refresh_sparse(pool.members());
                }
                pool.members().iter().map(|&t| t as usize).collect()
            }
        };
        if open.is_empty() {
            return Ok(weights
                .iter()
                .map(|w| AssignResult {
                    tasks: Vec::new(),
                    alpha: w.alpha(),
                    beta: w.beta(),
                })
                .collect());
        }
        let local_tasks: Vec<Task> = open
            .iter()
            .enumerate()
            .map(|(li, &ci)| {
                let t = inner.tasks.get(TaskId(ci as u32));
                let kw = if t.keywords.nbits() == width {
                    t.keywords.clone()
                } else {
                    inner.space.widen(&t.keywords)
                };
                Task::new(TaskId(li as u32), t.group, kw)
            })
            .collect();
        let xmax = inner.xmax;
        let inst = Instance::new(local_tasks, local_workers, xmax)
            .expect("constructed instances are well-formed");
        let solver = HtaGre::structured()
            .without_flip()
            .with_threads(inner.solver_threads);
        let out = if inner.sparse_mode_k().is_some() {
            solve_open_subset_sparse_warm(
                &solver,
                &inst,
                &open,
                inner.sparse_cache.as_ref(),
                inner.sparse_warm.as_mut(),
                &mut inner.rng,
            )
        } else {
            inner.ensure_edge_cache();
            solve_open_subset_warm(
                &solver,
                &inst,
                &open,
                inner.edge_cache.as_ref(),
                inner.warm.as_mut(),
                &mut inner.rng,
            )
        };

        let mut results = Vec::with_capacity(cohort.len());
        for (li, (&w, est)) in cohort.iter().zip(&weights).enumerate() {
            let mut assigned = Vec::new();
            for &local in out.assignment.tasks_of(li) {
                let ci = open[local];
                inner.close_task(ci);
                assigned.push(ci);
            }
            inner.workers[w].assigned.extend(&assigned);
            results.push(AssignResult {
                tasks: assigned,
                alpha: est.alpha(),
                beta: est.beta(),
            });
        }
        Ok(results)
    }

    /// The sequential reference semantics for a cohort: per-worker
    /// singleton solves in cohort order under a single lock hold — state-
    /// and RNG-stream-equivalent to calling [`PlatformState::assign`] once
    /// per cohort entry in the same order, but atomic with respect to
    /// other clients. This is the ground truth the batch path is
    /// property-tested against, exposed over `POST /assign_batch?mode=seq`.
    ///
    /// On the first unknown worker id the error is returned and earlier
    /// entries' assignments remain applied — exactly what the equivalent
    /// sequence of individual `/assign` calls would leave behind.
    pub fn assign_batch_sequential(
        &self,
        cohort: &[usize],
    ) -> Result<Vec<AssignResult>, StateError> {
        let coord = self.shard_topk_coord();
        let mut guard = self.inner.lock().expect("state lock");
        let inner = &mut *guard;
        cohort
            .iter()
            .map(|&w| Self::assign_locked(inner, w, coord.as_deref()))
            .collect()
    }

    /// Record a completion (Figure 4's "Notify t completed by w"): updates
    /// the adaptive estimator from the observed marginal gains. The
    /// completion counts as a passed verification for reputation purposes.
    pub fn complete(&self, worker: usize, task: usize) -> Result<CompleteResult, StateError> {
        self.complete_with_outcome(worker, task, true)
    }

    /// [`Self::complete`] with an explicit verification outcome folded into
    /// the worker's [`Reputation`]. The outcome is observational: estimator
    /// updates, the assignment ledger, and the RNG stream are identical for
    /// `pass = true` and `pass = false`.
    pub fn complete_with_outcome(
        &self,
        worker: usize,
        task: usize,
        pass: bool,
    ) -> Result<CompleteResult, StateError> {
        let mut inner = self.inner.lock().expect("state lock");
        if worker >= inner.workers.len() {
            return Err(StateError::UnknownWorker(worker));
        }
        let Some(pos) = inner.workers[worker]
            .assigned
            .iter()
            .position(|&t| t == task)
        else {
            return Err(StateError::NotAssigned { worker, task });
        };

        // Normalized marginal gains against the remaining display.
        let width = inner.space.len();
        let kw_of = |inner: &Inner, ci: usize| -> KeywordVec {
            let t = inner.tasks.get(TaskId(ci as u32));
            if t.keywords.nbits() == width {
                t.keywords.clone()
            } else {
                inner.space.widen(&t.keywords)
            }
        };
        let jac =
            |a: &KeywordVec, b: &KeywordVec| -> f64 { hta_core::kernels::jaccard_distance(a, b) };
        let wkw = if inner.workers[worker].keywords.nbits() == width {
            inner.workers[worker].keywords.clone()
        } else {
            inner.space.widen(&inner.workers[worker].keywords)
        };
        let completed_kw: Vec<KeywordVec> = inner.workers[worker]
            .completed
            .iter()
            .map(|&c| kw_of(&inner, c))
            .collect();
        let gain_d = |inner: &Inner, c: usize| -> f64 {
            let kw = kw_of(inner, c);
            completed_kw.iter().map(|k| jac(k, &kw)).sum()
        };
        let gain_r = |inner: &Inner, c: usize| -> f64 { 1.0 - jac(&kw_of(inner, c), &wkw) };

        let candidates: Vec<usize> = inner.workers[worker].assigned.clone();
        let gd = gain_d(&inner, task);
        let gr = gain_r(&inner, task);
        let max_gd = candidates
            .iter()
            .map(|&c| gain_d(&inner, c))
            .fold(0.0f64, f64::max);
        let max_gr = candidates
            .iter()
            .map(|&c| gain_r(&inner, c))
            .fold(0.0f64, f64::max);
        inner.workers[worker].estimator.observe_gains(
            (max_gd > 0.0).then(|| gd / max_gd),
            (max_gr > 0.0).then(|| gr / max_gr),
        );

        inner.workers[worker].assigned.remove(pos);
        inner.workers[worker].completed.push(task);
        inner.workers[worker].reputation.observe(pass);
        let est = inner.workers[worker].estimator.estimate();
        Ok(CompleteResult {
            alpha: est.alpha(),
            beta: est.beta(),
            remaining: inner.workers[worker].assigned.len(),
        })
    }

    /// A copy of `worker`'s verification track record (see
    /// [`Reputation`] for the score semantics).
    pub fn reputation(&self, worker: usize) -> Result<Reputation, StateError> {
        let inner = self.inner.lock().expect("state lock");
        inner
            .workers
            .get(worker)
            .map(|w| w.reputation.clone())
            .ok_or(StateError::UnknownWorker(worker))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> Stats {
        let inner = self.inner.lock().expect("state lock");
        let open = inner.available.iter().filter(|&&a| a).count();
        let assigned: usize = inner.workers.iter().map(|w| w.assigned.len()).sum();
        let completed: usize = inner.workers.iter().map(|w| w.completed.len()).sum();
        Stats {
            workers: inner.workers.len(),
            open_tasks: open,
            assigned_tasks: assigned,
            completed_tasks: completed,
            indexed_tasks: inner.index.len(),
            shard_sizes: inner.index.shard_sizes(),
            edge_cache_cap: inner.resolved_edge_cache_cap(),
        }
    }

    /// `worker`'s top-`k` open tasks by Jaccard relevance — the retrieval
    /// read path replicas answer locally over their replicated index
    /// (`GET /topk`). Scores are exact; callers that forward them between
    /// nodes must carry the `f64` bit patterns, not decimal renderings.
    pub fn worker_topk(&self, worker: usize, k: usize) -> Result<Vec<(u32, f64)>, StateError> {
        let inner = self.inner.lock().expect("state lock");
        let Some(w) = inner.workers.get(worker) else {
            return Err(StateError::UnknownWorker(worker));
        };
        let wkw = if w.keywords.nbits() == inner.space.len() {
            w.keywords.clone()
        } else {
            inner.space.widen(&w.keywords)
        };
        Ok(inner.index.top_k(&wkw, k))
    }

    /// Read-only preview of the candidate pool the current mode would hand
    /// the solver for a singleton `worker` (`GET /candidates`). Returns
    /// `(members, topk_hits)`; in dense mode every member is a "hit".
    pub fn candidate_pool(&self, worker: usize) -> Result<(Vec<u32>, usize), StateError> {
        let inner = self.inner.lock().expect("state lock");
        let Some(w) = inner.workers.get(worker) else {
            return Err(StateError::UnknownWorker(worker));
        };
        match inner.mode {
            CandidateMode::Full => {
                let members: Vec<u32> = (0..inner.available.len())
                    .filter(|&i| inner.available[i])
                    .take(inner.max_instance_tasks)
                    .map(|i| i as u32)
                    .collect();
                let hits = members.len();
                Ok((members, hits))
            }
            CandidateMode::TopK(k) => {
                let wkw = if w.keywords.nbits() == inner.space.len() {
                    w.keywords.clone()
                } else {
                    inner.space.widen(&w.keywords)
                };
                let probe = Worker::new(WorkerId(0), wkw).with_weights(w.estimator.estimate());
                let pool = CandidatePool::generate(
                    &inner.index,
                    &[probe],
                    inner.xmax,
                    &PoolParams::with_k(k),
                );
                Ok((pool.members().to_vec(), pool.topk_hits()))
            }
        }
    }

    /// Shard-local per-worker top-k (`GET /shard_topk` on a shard worker):
    /// exact top-`k` for each cohort member over the open tasks owned by
    /// shard `shard_index` of `shard_count` (`task % count == index`).
    ///
    /// Built on a fresh [`InvertedIndex`] over the owned slice so ownership
    /// filtering never disturbs the serving index. Per-task Jaccard scores
    /// do not depend on what else is indexed, so these lists merge
    /// ([`hta_index::merge_topk`]) to exactly the flat index's output.
    pub fn shard_topk(
        &self,
        cohort: &[usize],
        k: usize,
        shard_index: u32,
        shard_count: u32,
    ) -> Result<Vec<Vec<(u32, f64)>>, StateError> {
        assert!(shard_count > 0, "shard count must be positive");
        let inner = self.inner.lock().expect("state lock");
        for &w in cohort {
            if w >= inner.workers.len() {
                return Err(StateError::UnknownWorker(w));
            }
        }
        let width = inner.space.len();
        let widen = |kw: &KeywordVec| {
            if kw.nbits() == width {
                kw.clone()
            } else {
                inner.space.widen(kw)
            }
        };
        let mut index = InvertedIndex::new(width);
        for (t, &open) in inner.available.iter().enumerate() {
            if open && (t as u32) % shard_count == shard_index {
                let kw = widen(&inner.tasks.get(TaskId(t as u32)).keywords);
                index.insert(t as u32, &kw);
            }
        }
        Ok(cohort
            .iter()
            .map(|&w| index.top_k(&widen(&inner.workers[w].keywords), k))
            .collect())
    }
}

/// Lookup keyword names of a task (used by the /tasks endpoint).
impl PlatformState {
    /// Keyword names of catalog task `index`, or `None` if out of range.
    pub fn task_keywords(&self, index: usize) -> Option<Vec<String>> {
        let inner = self.inner.lock().expect("state lock");
        if index >= inner.tasks.len() {
            return None;
        }
        let t = inner.tasks.get(TaskId(index as u32));
        Some(
            t.keywords
                .iter_ones()
                .map(|i| inner.space.name(hta_core::KeywordId(i as u32)).to_owned())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_datagen::amt::{generate, AmtConfig};

    fn state() -> PlatformState {
        let w = generate(&AmtConfig {
            n_groups: 20,
            tasks_per_group: 10,
            vocab_size: 80,
            ..Default::default()
        });
        PlatformState::new(w.space, w.tasks, 5, 42)
    }

    #[test]
    fn register_assign_complete_cycle() {
        let s = state();
        let w = s.register_worker(&["english", "survey"]).unwrap();
        assert_eq!(w, 0);
        let a = s.assign(w).unwrap();
        assert_eq!(a.tasks.len(), 5);
        assert!((a.alpha - 0.5).abs() < 1e-12, "cold start is balanced");

        let c = s.complete(w, a.tasks[0]).unwrap();
        assert_eq!(c.remaining, 4);
        assert!((c.alpha + c.beta - 1.0).abs() < 1e-9);

        let st = s.stats();
        assert_eq!(st.workers, 1);
        assert_eq!(st.completed_tasks, 1);
        assert_eq!(st.assigned_tasks, 4);
        assert_eq!(st.open_tasks, 200 - 5);
    }

    #[test]
    fn completing_unassigned_task_fails() {
        let s = state();
        let w = s.register_worker(&["english"]).unwrap();
        assert_eq!(
            s.complete(w, 7),
            Err(StateError::NotAssigned { worker: w, task: 7 })
        );
        assert_eq!(s.complete(99, 0), Err(StateError::UnknownWorker(99)));
    }

    #[test]
    fn tasks_are_never_double_assigned() {
        let s = state();
        let w1 = s.register_worker(&["english", "survey"]).unwrap();
        let w2 = s.register_worker(&["english", "audio"]).unwrap();
        let a1 = s.assign(w1).unwrap();
        let a2 = s.assign(w2).unwrap();
        for t in &a2.tasks {
            assert!(!a1.tasks.contains(t), "task {t} double-assigned");
        }
    }

    #[test]
    fn adaptive_weights_move_with_observations() {
        let s = state();
        let w = s.register_worker(&["english", "survey", "audio"]).unwrap();
        let a = s.assign(w).unwrap();
        let mut last = (0.5, 0.5);
        for &t in &a.tasks {
            let c = s.complete(w, t).unwrap();
            last = (c.alpha, c.beta);
        }
        // After several observations the estimate is generally off-balance.
        assert!((last.0 + last.1 - 1.0).abs() < 1e-9);
        // New assignment uses the updated weights.
        let a2 = s.assign(w).unwrap();
        assert!((a2.alpha - last.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_keywords_are_interned() {
        let s = state();
        let w = s.register_worker(&["totally-new-keyword"]).unwrap();
        let a = s.assign(w).unwrap();
        // Solvable even though the keyword is new (rel = 0 everywhere).
        assert_eq!(a.tasks.len(), 5);
    }

    #[test]
    fn empty_keyword_registration_rejected() {
        let s = state();
        assert_eq!(s.register_worker(&[]), Err(StateError::NoKeywords));
    }

    #[test]
    fn pool_exhaustion_yields_empty_assignment() {
        let w = generate(&AmtConfig {
            n_groups: 1,
            tasks_per_group: 4,
            vocab_size: 10,
            ..Default::default()
        });
        let s = PlatformState::new(w.space, w.tasks, 5, 1);
        let a = s.register_worker(&["english"]).unwrap();
        let first = s.assign(a).unwrap();
        assert_eq!(first.tasks.len(), 4);
        let second = s.assign(a).unwrap();
        assert!(second.tasks.is_empty());
    }

    #[test]
    fn index_tracks_open_tasks_across_the_lifecycle() {
        let s = state();
        let st = s.stats();
        assert_eq!(st.indexed_tasks, st.open_tasks, "index starts in sync");

        let w = s
            .register_worker(&["english", "survey", "brand-new-kw"])
            .unwrap();
        let a = s.assign(w).unwrap();
        assert_eq!(a.tasks.len(), 5);
        let st = s.stats();
        assert_eq!(st.indexed_tasks, st.open_tasks, "assign removes from index");

        s.complete(w, a.tasks[0]).unwrap();
        let st = s.stats();
        assert_eq!(
            st.indexed_tasks, st.open_tasks,
            "complete leaves index alone"
        );

        // Drain a few more rounds; the invariant must hold throughout.
        for _ in 0..5 {
            s.assign(w).unwrap();
            let st = s.stats();
            assert_eq!(st.indexed_tasks, st.open_tasks);
        }
    }

    #[test]
    fn dense_and_sparse_modes_both_fill_the_display() {
        let w = generate(&AmtConfig {
            n_groups: 20,
            tasks_per_group: 10,
            vocab_size: 80,
            ..Default::default()
        });
        let s = PlatformState::with_mode(w.space, w.tasks, 5, 42, CandidateMode::Full);
        assert_eq!(s.candidate_mode(), CandidateMode::Full);
        let wid = s.register_worker(&["english", "survey"]).unwrap();
        let dense = s.assign(wid).unwrap();
        assert_eq!(dense.tasks.len(), 5);

        // Flip to sparse mid-stream: the index never went stale, so the
        // next assignment draws from it directly.
        s.set_candidate_mode(CandidateMode::TopK(8));
        let sparse = s.assign(wid).unwrap();
        assert_eq!(sparse.tasks.len(), 5);
        for t in &sparse.tasks {
            assert!(!dense.tasks.contains(t), "task {t} double-assigned");
        }
        let st = s.stats();
        assert_eq!(st.indexed_tasks, st.open_tasks);
    }

    #[test]
    fn stats_report_per_shard_sizes() {
        let w = generate(&AmtConfig {
            n_groups: 20,
            tasks_per_group: 10,
            vocab_size: 80,
            ..Default::default()
        });
        let s =
            PlatformState::with_options(w.space, w.tasks, 5, 42, CandidateMode::default(), 3, 1);
        let st = s.stats();
        assert_eq!(st.shard_sizes.len(), 3);
        // Every open task holds ≥1 keyword, so it lands in ≥1 shard.
        assert!(st.shard_sizes.iter().sum::<usize>() >= st.indexed_tasks);

        // Assignment removes tasks from every shard they occupy.
        let wid = s.register_worker(&["english", "survey"]).unwrap();
        s.assign(wid).unwrap();
        let st2 = s.stats();
        assert_eq!(st2.shard_sizes.len(), 3);
        assert!(st2.shard_sizes.iter().sum::<usize>() < st.shard_sizes.iter().sum::<usize>());
        assert_eq!(st2.indexed_tasks, st2.open_tasks);
    }

    #[test]
    fn batch_assignments_are_disjoint_and_ledgered() {
        let s = state();
        let w1 = s.register_worker(&["english", "survey"]).unwrap();
        let w2 = s.register_worker(&["english", "audio"]).unwrap();
        let w3 = s.register_worker(&["image", "tagging"]).unwrap();
        let rs = s.assign_batch(&[w1, w2, w3]).unwrap();
        assert_eq!(rs.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for r in &rs {
            assert_eq!(r.tasks.len(), 5, "every cohort member fills a display");
            for &t in &r.tasks {
                assert!(seen.insert(t), "task {t} assigned to two cohort members");
            }
        }
        let st = s.stats();
        assert_eq!(st.assigned_tasks, 15);
        assert_eq!(st.open_tasks, 200 - 15);
        assert_eq!(st.indexed_tasks, st.open_tasks, "index stays in sync");
        // Completions keep working against the batch-filled ledger.
        let c = s.complete(w2, rs[1].tasks[0]).unwrap();
        assert_eq!(c.remaining, 4);
    }

    #[test]
    fn batch_with_unknown_worker_changes_nothing() {
        let s = state();
        let w = s.register_worker(&["english"]).unwrap();
        assert_eq!(s.assign_batch(&[w, 99]), Err(StateError::UnknownWorker(99)));
        assert_eq!(s.stats().assigned_tasks, 0, "validation precedes mutation");
        assert_eq!(s.assign_batch(&[]), Ok(Vec::new()));
    }

    #[test]
    fn sequential_batch_matches_individual_assigns() {
        let make = || {
            let w = generate(&AmtConfig {
                n_groups: 20,
                tasks_per_group: 10,
                vocab_size: 80,
                ..Default::default()
            });
            let s = PlatformState::new(w.space, w.tasks, 5, 99);
            let a = s.register_worker(&["english", "survey"]).unwrap();
            let b = s.register_worker(&["english", "audio"]).unwrap();
            (s, a, b)
        };
        let (seq, a1, b1) = make();
        let rs = seq.assign_batch_sequential(&[a1, b1, a1]).unwrap();
        let (one, a2, b2) = make();
        let expect = vec![
            one.assign(a2).unwrap(),
            one.assign(b2).unwrap(),
            one.assign(a2).unwrap(),
        ];
        assert_eq!(rs, expect, "same RNG stream, same ledger order");
    }

    #[test]
    fn edge_cache_does_not_change_solver_output() {
        // Build two identical states; force one to solve dense-mode without
        // a cache by oversizing the catalog threshold... instead, compare
        // dense (Full) assignments against the documented PR3 property: a
        // cached state restored from a snapshot (cache dropped) must
        // reproduce the original's assignments bit-for-bit.
        let w = generate(&AmtConfig {
            n_groups: 20,
            tasks_per_group: 10,
            vocab_size: 80,
            ..Default::default()
        });
        let s = PlatformState::new(w.space, w.tasks, 5, 1234);
        let wid = s.register_worker(&["english", "survey"]).unwrap();
        let first = s.assign(wid).unwrap(); // builds + uses the cache

        let dir = std::env::temp_dir().join(format!("hta-edgecache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.htasnap");
        s.save_snapshot(&path).unwrap();
        let restored = PlatformState::restore(&path).unwrap(); // cache = None
        let next_cached = s.assign(wid).unwrap();
        let next_fresh = restored.assign(wid).unwrap(); // rebuilds lazily
        assert_eq!(next_cached, next_fresh, "cache reuse is byte-identical");
        assert_ne!(first.tasks, next_cached.tasks);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_start_does_not_change_assignments() {
        let make = || {
            let w = generate(&AmtConfig {
                n_groups: 20,
                tasks_per_group: 10,
                vocab_size: 80,
                ..Default::default()
            });
            let s = PlatformState::new(w.space, w.tasks, 5, 7);
            let a = s.register_worker(&["english", "survey"]).unwrap();
            let b = s.register_worker(&["english", "audio"]).unwrap();
            (s, a, b)
        };
        let (warm, wa, wb) = make();
        assert!(warm.warm_start(), "warm solving defaults to on");
        let (cold, ca, cb) = make();
        cold.set_warm_start(false);

        // Singleton and batch solves, interleaved with completions so the
        // open set churns between solves — the warm path must repair its
        // carried matching to exactly the cold rebuild every round.
        for round in 0..4 {
            let w1 = warm.assign(wa).unwrap();
            let c1 = cold.assign(ca).unwrap();
            assert_eq!(w1, c1, "round {round}: singleton assign diverged");
            let wbatch = warm.assign_batch(&[wb, wa]).unwrap();
            let cbatch = cold.assign_batch(&[cb, ca]).unwrap();
            assert_eq!(wbatch, cbatch, "round {round}: batch assign diverged");
            if let Some(&t) = w1.tasks.first() {
                warm.complete(wa, t).unwrap();
                cold.complete(ca, t).unwrap();
            }
        }
        assert_eq!(warm.stats(), cold.stats());

        // Flipping the knob mid-stream stays byte-identical both ways.
        warm.set_warm_start(false);
        cold.set_warm_start(true);
        assert_eq!(warm.assign(wa).unwrap(), cold.assign(ca).unwrap());
        assert_eq!(
            warm.assign_batch(&[wa, wb]).unwrap(),
            cold.assign_batch(&[ca, cb]).unwrap()
        );
    }

    /// An in-process stand-in for the cluster coordinator: partitions the
    /// open set by `task % count`, retrieves per-shard top-k on fresh
    /// indices, and merges — exactly what the networked shard workers do,
    /// minus the wire.
    struct LocalShards {
        count: u32,
    }

    impl ShardTopk for LocalShards {
        fn worker_topk(
            &self,
            inner: &Inner,
            cohort: &[usize],
            k: usize,
        ) -> Option<Vec<Vec<(u32, f64)>>> {
            let width = inner.space.len();
            let widen = |kw: &KeywordVec| {
                if kw.nbits() == width {
                    kw.clone()
                } else {
                    inner.space.widen(kw)
                }
            };
            let mut per_worker: Vec<Vec<Vec<(u32, f64)>>> = vec![Vec::new(); cohort.len()];
            for s in 0..self.count {
                let mut index = InvertedIndex::new(width);
                for (t, &open) in inner.available.iter().enumerate() {
                    if open && (t as u32) % self.count == s {
                        index.insert(
                            t as u32,
                            &widen(&inner.tasks.get(TaskId(t as u32)).keywords),
                        );
                    }
                }
                for (wi, &w) in cohort.iter().enumerate() {
                    per_worker[wi].push(index.top_k(&widen(&inner.workers[w].keywords), k));
                }
            }
            Some(
                per_worker
                    .iter()
                    .map(|lists| hta_index::merge_topk(lists, k))
                    .collect(),
            )
        }
    }

    #[test]
    fn sharded_retrieval_is_byte_identical_to_local() {
        let make = || {
            let w = generate(&AmtConfig {
                n_groups: 20,
                tasks_per_group: 10,
                vocab_size: 80,
                ..Default::default()
            });
            let s = PlatformState::new(w.space, w.tasks, 5, 0xC1);
            let a = s.register_worker(&["english", "survey"]).unwrap();
            let b = s.register_worker(&["english", "audio"]).unwrap();
            (s, a, b)
        };
        let (sharded, sa, sb) = make();
        sharded.set_shard_topk(Some(Arc::new(LocalShards { count: 3 })));
        let (local, la, lb) = make();

        for round in 0..4 {
            let x = sharded.assign(sa).unwrap();
            let y = local.assign(la).unwrap();
            assert_eq!(x, y, "round {round}: singleton assign diverged");
            assert_eq!(
                sharded.assign_batch(&[sb, sa]).unwrap(),
                local.assign_batch(&[lb, la]).unwrap(),
                "round {round}: batch assign diverged"
            );
            if let Some(&t) = x.tasks.first() {
                sharded.complete(sa, t).unwrap();
                local.complete(la, t).unwrap();
            }
        }
        assert_eq!(
            sharded.snapshot_bytes(),
            local.snapshot_bytes(),
            "sharded and local retrieval left different serialized state"
        );
    }

    #[test]
    fn worker_topk_and_candidate_pool_read_paths() {
        let s = state();
        let w = s.register_worker(&["english", "survey"]).unwrap();
        assert!(matches!(
            s.worker_topk(99, 4),
            Err(StateError::UnknownWorker(99))
        ));
        let topk = s.worker_topk(w, 4).unwrap();
        assert!(topk.len() <= 4 && !topk.is_empty());
        assert!(topk.windows(2).all(|p| p[0].1 >= p[1].1), "sorted by score");

        let (pool, hits) = s.candidate_pool(w).unwrap();
        assert!(pool.windows(2).all(|p| p[0] < p[1]), "ascending member ids");
        assert!(hits <= pool.len());
        // The preview is read-only: stats and a later assign are untouched.
        assert_eq!(s.stats().assigned_tasks, 0);

        // Shard lists merge back to the flat top-k, scores bit-identical.
        let k = 7;
        let flat = s.worker_topk(w, k).unwrap();
        let per_shard: Vec<Vec<(u32, f64)>> = (0..3)
            .map(|i| s.shard_topk(&[w], k, i, 3).unwrap().remove(0))
            .collect();
        let merged = hta_index::merge_topk(&per_shard, k);
        assert_eq!(merged.len(), flat.len());
        for (m, f) in merged.iter().zip(&flat) {
            assert_eq!(m.0, f.0);
            assert_eq!(m.1.to_bits(), f.1.to_bits());
        }
    }

    #[test]
    fn task_keywords_lookup() {
        let s = state();
        assert!(s.task_keywords(0).is_some());
        assert!(s.task_keywords(10_000).is_none());
        assert!(!s.task_keywords(0).unwrap().is_empty());
    }

    #[test]
    fn sparse_mode_matches_dense_past_the_cap() {
        // Three twins in TopK mode, identical seeds: one with an edge-cache
        // cap the catalog exceeds (→ sparse pipeline: pool maintainer +
        // sparse edge cache + sparse warm repair), one with the default cap
        // (→ dense cache + dense warm repair), and one past the cap with
        // warm solving off (→ cold per-solve enumeration). All three must
        // hand out byte-identical assignments through register / assign /
        // assign_batch / complete churn.
        let make = || {
            let w = generate(&AmtConfig {
                n_groups: 20,
                tasks_per_group: 10,
                vocab_size: 80,
                ..Default::default()
            });
            let s = PlatformState::new(w.space, w.tasks, 5, 0x5AB5);
            s.set_candidate_mode(CandidateMode::TopK(16));
            let a = s.register_worker(&["english", "survey"]).unwrap();
            let b = s.register_worker(&["english", "audio"]).unwrap();
            (s, a, b)
        };
        let (sparse, sa, sb) = make();
        sparse.set_edge_cache_cap(1); // catalog (200) > cap → sparse mode
        let (dense, da, db) = make();
        let (cold, ca, cb) = make();
        cold.set_edge_cache_cap(1);
        cold.set_warm_start(false);

        for round in 0..4 {
            let x = sparse.assign(sa).unwrap();
            let y = dense.assign(da).unwrap();
            let z = cold.assign(ca).unwrap();
            assert_eq!(x, y, "round {round}: sparse vs dense diverged");
            assert_eq!(x, z, "round {round}: sparse vs cold diverged");
            let xb = sparse.assign_batch(&[sb, sa]).unwrap();
            let yb = dense.assign_batch(&[db, da]).unwrap();
            let zb = cold.assign_batch(&[cb, ca]).unwrap();
            assert_eq!(xb, yb, "round {round}: batch sparse vs dense diverged");
            assert_eq!(xb, zb, "round {round}: batch sparse vs cold diverged");
            let xs = sparse.assign_batch_sequential(&[sb, sa]).unwrap();
            let ys = dense.assign_batch_sequential(&[db, da]).unwrap();
            let zs = cold.assign_batch_sequential(&[cb, ca]).unwrap();
            assert_eq!(xs, ys, "round {round}: seq batch sparse vs dense diverged");
            assert_eq!(xs, zs, "round {round}: seq batch sparse vs cold diverged");
            if let Some(&t) = x.tasks.first() {
                sparse.complete(sa, t).unwrap();
                dense.complete(da, t).unwrap();
                cold.complete(ca, t).unwrap();
            }
        }
        // The sparse pipeline actually engaged (not a silent dense fallback).
        sparse.with_inner(|i| {
            assert!(i.pool_maint.is_some(), "pool maintainer never built");
            let cache = i.sparse_cache.as_ref().expect("sparse cache never built");
            assert!(!cache.members().is_empty(), "sparse cache has no members");
            assert!(i.sparse_warm.is_some(), "sparse warm state never built");
        });
        dense.with_inner(|i| {
            assert!(i.sparse_cache.is_none(), "dense twin built a sparse cache");
            assert!(i.edge_cache.is_some(), "dense twin never built its cache");
        });
        // Serialized state is identical: the sparse pipeline is derived,
        // never snapshotted.
        assert_eq!(sparse.snapshot_bytes(), dense.snapshot_bytes());
        assert_eq!(sparse.snapshot_bytes(), cold.snapshot_bytes());
    }

    #[test]
    fn edge_cache_cap_override_resolves_into_stats() {
        let s = state();
        // No override and (in the test environment) no env var: the
        // built-in default is what /stats reports.
        if std::env::var("HTA_EDGE_CACHE_CAP").is_err() {
            assert_eq!(
                s.stats().edge_cache_cap,
                hta_core::edges::DEFAULT_EDGE_CACHE_TASKS
            );
        }
        s.set_edge_cache_cap(100);
        assert_eq!(s.stats().edge_cache_cap, 100);
        assert_eq!(s.edge_cache_cap(), 100);
        // Shrinking the cap below the catalog drops the dense cache so the
        // sparse pipeline can take over on the next TopK solve.
        s.with_inner(|i| assert!(i.edge_cache.is_none()));
        s.set_edge_cache_cap(0);
        if std::env::var("HTA_EDGE_CACHE_CAP").is_err() {
            assert_eq!(
                s.stats().edge_cache_cap,
                hta_core::edges::DEFAULT_EDGE_CACHE_TASKS
            );
        }
    }
}
