//! A deliberately small HTTP/1.1 server core (std-only).
//!
//! The offline dependency set restricts us to the standard library; the
//! platform API needs only `GET`/`POST` with query parameters and JSON
//! responses, so a ~200-line implementation is both sufficient and easy to
//! audit. Limits: requests up to 16 KiB, no keep-alive, no chunked bodies.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted request size (headers + body).
pub const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/assign`.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
}

impl Request {
    /// A query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// A required, typed query parameter.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.param(key)
            .ok_or_else(|| format!("missing query parameter '{key}'"))?
            .parse()
            .map_err(|_| format!("query parameter '{key}' is malformed"))
    }
}

/// A response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body (the platform always returns JSON).
    pub body: String,
    /// `Location` header target for redirect responses.
    pub location: Option<String>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn ok(body: String) -> Self {
        Self {
            status: 200,
            body,
            location: None,
        }
    }

    /// An error with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Self {
            status,
            body: format!("{{\"error\":{}}}", json_string(message)),
            location: None,
        }
    }

    /// A `307 Temporary Redirect` to `url` — how read replicas bounce
    /// write endpoints to the primary. `307` (not `301`/`302`) so clients
    /// replay the `POST` verbatim against the redirect target.
    pub fn redirect(url: String) -> Self {
        Self {
            status: 307,
            body: format!("{{\"redirect\":{}}}", json_string(&url)),
            location: Some(url),
        }
    }
}

/// Percent-decode a query component (`+` means space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 3 <= bytes.len() => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a query component (inverse of [`url_decode`]).
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Parse the query string `a=1&b=two` into a map (later keys win).
pub fn parse_query(qs: &str) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for pair in qs.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        map.insert(url_decode(k), url_decode(v));
    }
    map
}

/// Read and parse one request from a stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?)
        .take(MAX_REQUEST_BYTES as u64);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read error: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let target = parts.next().ok_or("missing request target")?.to_owned();
    // Drain headers (we do not need them for this API).
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read error: {e}"))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target, HashMap::new()),
    };
    Ok(Request {
        method,
        path,
        query,
    })
}

/// Serialize and send a response.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        307 => "Temporary Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    };
    let location = match &response.location {
        Some(url) => format!("Location: {url}\r\n"),
        None => String::new(),
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        response.status,
        reason,
        response.body.len(),
        location,
        response.body
    )?;
    stream.flush()
}

/// JSON-escape a string (including the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_and_decoding() {
        let q = parse_query("a=1&b=two+words&c=%2Fslash&flag");
        assert_eq!(q.get("a").unwrap(), "1");
        assert_eq!(q.get("b").unwrap(), "two words");
        assert_eq!(q.get("c").unwrap(), "/slash");
        assert_eq!(q.get("flag").unwrap(), "");
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn url_encode_round_trips_through_decode() {
        for s in ["plain", "two words", "a;b/c", "kw=%&+", "naïve"] {
            assert_eq!(url_decode(&url_encode(s)), s, "{s:?}");
        }
        assert_eq!(url_encode("a b"), "a%20b");
    }

    #[test]
    fn url_decode_edge_cases() {
        assert_eq!(url_decode("%41%42"), "AB");
        assert_eq!(url_decode("%4"), "%4"); // truncated escape preserved
        assert_eq!(url_decode("%zz"), "%zz"); // invalid hex preserved
        assert_eq!(url_decode("plain"), "plain");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn request_param_helpers() {
        let r = Request {
            method: "GET".into(),
            path: "/x".into(),
            query: parse_query("worker=4&name=ann"),
        };
        assert_eq!(r.param("name"), Some("ann"));
        assert_eq!(r.require::<usize>("worker").unwrap(), 4);
        assert!(r.require::<usize>("missing").is_err());
        assert!(r.require::<usize>("name").is_err());
    }

    #[test]
    fn response_constructors() {
        let ok = Response::ok("{}".into());
        assert_eq!(ok.status, 200);
        let err = Response::error(400, "bad \"thing\"");
        assert_eq!(err.status, 400);
        assert!(err.body.contains("\\\"thing\\\""));
        assert_eq!(err.location, None);
        let redir = Response::redirect("http://10.0.0.1:80/assign?worker=1".into());
        assert_eq!(redir.status, 307);
        assert_eq!(
            redir.location.as_deref(),
            Some("http://10.0.0.1:80/assign?worker=1")
        );
        assert!(redir.body.contains("\"redirect\""));
    }
}
