//! HTTP routing: the platform API endpoints over [`PlatformState`].
//!
//! | endpoint | effect |
//! |---|---|
//! | `GET /health` | liveness probe (answered inline by the reactor) |
//! | `POST /register?keywords=a;b;c` | create a worker, returns its id |
//! | `POST /assign?worker=N` | solve HTA for the worker, returns task ids |
//! | `POST /assign_batch?workers=1,2,5` | one shared pool + one joint solve for the cohort |
//! | `POST /complete?worker=N&task=M[&ok=bool]` | record a completion (and its verification outcome), returns updated (α, β) |
//! | `GET /tasks?id=M` | a task's keywords |
//! | `GET /reputation?worker=N` | the worker's verification track record |
//! | `GET /stats` | aggregate counters incl. the active SIMD kernel mode (+ serving metrics when reactor-hosted) |
//! | `GET /topk?worker=N[&k=K]` | the worker's exact top-k relevance-ranked open tasks |
//! | `GET /candidates?worker=N` | the worker's candidate pool under the configured mode |
//! | `POST /snapshot?path=FILE` | atomically save the full serving state |
//! | `GET /cluster` | cluster-aware nodes only: role, epoch, peers/primary |
//! | `GET /shard_topk?epoch=E&workers=CSV&k=K` | shard workers only: shard-local top-k at epoch `E` |
//!
//! On replicas and shard workers the four mutating endpoints (`/register`,
//! `/assign`, `/assign_batch`, `/complete`) answer `307` + `Location`
//! pointing at the primary; `/snapshot` stays local so operators can dump
//! any node's serving state for byte-comparison.

use std::fmt::Write as _;
use std::path::Path;

use hta_index::CandidateMode;

use crate::cluster::{encode_shard_lists, ClusterCtx, Role, SHARD_TIMEOUT};
use crate::http::{json_string, url_encode, Request, Response};
use crate::metrics::ServingMetrics;
use crate::state::{PlatformState, StateError};

/// Dispatch one request against the state (no serving-layer counters —
/// the legacy front-end and direct library callers).
pub fn handle(state: &PlatformState, req: &Request) -> Response {
    handle_with_metrics(state, req, None)
}

/// Dispatch one request, splicing serving-layer counters into `GET /stats`
/// when the front-end provides them (the reactor server does).
pub fn handle_with_metrics(
    state: &PlatformState,
    req: &Request,
    serving: Option<&ServingMetrics>,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => Response::ok("{\"status\":\"ok\"}".to_owned()),
        ("POST", "/register") => register(state, req),
        ("POST", "/assign") => assign(state, req),
        ("POST", "/assign_batch") => assign_batch(state, req),
        ("POST", "/complete") => complete(state, req),
        ("GET", "/tasks") => task_info(state, req),
        ("GET", "/reputation") => reputation(state, req),
        ("GET", "/stats") => stats(state, serving),
        ("GET", "/topk") => topk(state, req),
        ("GET", "/candidates") => candidates(state, req),
        ("POST", "/snapshot") => snapshot(state, req),
        (_, "/register" | "/assign" | "/assign_batch" | "/complete" | "/snapshot") => {
            Response::error(405, "use POST for this endpoint")
        }
        (_, "/health" | "/tasks" | "/reputation" | "/stats" | "/topk" | "/candidates") => {
            Response::error(405, "use GET for this endpoint")
        }
        _ => Response::error(404, "unknown endpoint"),
    }
}

/// Dispatch one request on a cluster-aware node. `None` for `cluster`
/// behaves exactly like [`handle_with_metrics`] — single-process serving is
/// the zero-cluster special case. With a [`ClusterCtx`]:
///
/// * non-primary roles redirect mutating endpoints to the primary (`307`),
/// * `GET /cluster` and `GET /shard_topk` come alive,
/// * a primary publishes its state to the replication hub after every
///   successful mutation, so replicas converge within one delta frame.
pub fn handle_cluster(
    state: &PlatformState,
    req: &Request,
    serving: Option<&ServingMetrics>,
    cluster: Option<&ClusterCtx>,
) -> Response {
    if let Some(ctx) = cluster {
        if let Some(resp) = cluster_route(state, req, ctx) {
            return resp;
        }
    }
    let resp = handle_with_metrics(state, req, serving);
    if let Some(ctx) = cluster {
        if ctx.role == Role::Primary
            && resp.status == 200
            && matches!(
                (req.method.as_str(), req.path.as_str()),
                (
                    "POST",
                    "/register" | "/assign" | "/assign_batch" | "/complete"
                )
            )
        {
            if let Some(hub) = &ctx.hub {
                // Identical bytes are deduplicated inside the hub, so a
                // mutation that ends up a no-op does not burn an epoch.
                hub.publish(state.snapshot_bytes());
            }
        }
    }
    resp
}

/// The cluster-only routes; `None` falls through to the normal table.
fn cluster_route(state: &PlatformState, req: &Request, ctx: &ClusterCtx) -> Option<Response> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/cluster") => Some(cluster_info(ctx)),
        ("GET", "/shard_topk") => Some(shard_topk(state, req, ctx)),
        ("POST", "/register" | "/assign" | "/assign_batch" | "/complete")
            if ctx.role != Role::Primary =>
        {
            let Some(primary) = ctx.primary_http.as_deref() else {
                return Some(Response::error(500, "replica has no primary address"));
            };
            Some(Response::redirect(redirect_url(primary, req)))
        }
        _ => None,
    }
}

/// Rebuild the request target against the primary. Query keys are emitted
/// in sorted order (the decoded map lost arrival order) and re-encoded, so
/// the redirected request parses to the same parameter map.
fn redirect_url(primary: &str, req: &Request) -> String {
    let mut keys: Vec<&String> = req.query.keys().collect();
    keys.sort();
    let mut url = format!("http://{primary}{}", req.path);
    for (i, key) in keys.iter().enumerate() {
        url.push(if i == 0 { '?' } else { '&' });
        url.push_str(&url_encode(key));
        url.push('=');
        url.push_str(&url_encode(&req.query[*key]));
    }
    url
}

fn cluster_info(ctx: &ClusterCtx) -> Response {
    let mut body = format!("{{\"role\":\"{}\",\"epoch\":{}", ctx.role, ctx.epoch());
    if let Some(hub) = &ctx.hub {
        let _ = write!(body, ",\"peers\":{}", hub.peer_count());
    }
    if let Some(primary) = &ctx.primary_http {
        let _ = write!(body, ",\"primary\":{}", json_string(primary));
    }
    if let Some(shard) = ctx.shard {
        let _ = write!(
            body,
            ",\"shard\":{{\"index\":{},\"count\":{}}}",
            shard.index, shard.count
        );
    }
    body.push('}');
    Response::ok(body)
}

/// Shard-local exact top-k for a cohort, answered only once this node has
/// applied the epoch the primary pinned (bounded wait, then `409` — the
/// coordinator falls back to local retrieval rather than serve stale
/// candidates).
fn shard_topk(state: &PlatformState, req: &Request, ctx: &ClusterCtx) -> Response {
    let Some(shard) = ctx.shard else {
        return Response::error(404, "this node serves no shard");
    };
    let epoch = match req.require::<u64>("epoch") {
        Ok(e) => e,
        Err(e) => return Response::error(400, &e),
    };
    let k = match req.require::<usize>("k") {
        Ok(k) => k,
        Err(e) => return Response::error(400, &e),
    };
    let Some(raw) = req.param("workers") else {
        return Response::error(400, "missing query parameter 'workers'");
    };
    let cohort: Result<Vec<usize>, _> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::parse)
        .collect();
    let Ok(cohort) = cohort else {
        return Response::error(400, "query parameter 'workers' is malformed");
    };
    let applied = ctx.applied.wait_for(epoch, SHARD_TIMEOUT);
    if applied < epoch {
        return Response::error(
            409,
            &format!("shard applied epoch {applied}, primary pinned {epoch}"),
        );
    }
    match state.shard_topk(&cohort, k, shard.index, shard.count) {
        Ok(lists) => Response::ok(encode_shard_lists(applied, &lists)),
        Err(e) => state_error(e),
    }
}

fn state_error(e: StateError) -> Response {
    let status = match e {
        StateError::UnknownWorker(_) => 404,
        StateError::NotAssigned { .. } => 409,
        StateError::NoKeywords => 400,
    };
    Response::error(status, &e.to_string())
}

fn register(state: &PlatformState, req: &Request) -> Response {
    let Some(raw) = req.param("keywords") else {
        return Response::error(400, "missing query parameter 'keywords'");
    };
    let keywords: Vec<&str> = raw.split(';').filter(|s| !s.is_empty()).collect();
    match state.register_worker(&keywords) {
        Ok(id) => Response::ok(format!("{{\"worker_id\":{id}}}")),
        Err(e) => state_error(e),
    }
}

fn assign(state: &PlatformState, req: &Request) -> Response {
    let worker = match req.require::<usize>("worker") {
        Ok(w) => w,
        Err(e) => return Response::error(400, &e),
    };
    match state.assign(worker) {
        Ok(r) => {
            let ids: Vec<String> = r.tasks.iter().map(usize::to_string).collect();
            Response::ok(format!(
                "{{\"tasks\":[{}],\"alpha\":{:.6},\"beta\":{:.6}}}",
                ids.join(","),
                r.alpha,
                r.beta
            ))
        }
        Err(e) => state_error(e),
    }
}

fn assign_batch(state: &PlatformState, req: &Request) -> Response {
    let Some(raw) = req.param("workers") else {
        return Response::error(400, "missing query parameter 'workers'");
    };
    let cohort: Result<Vec<usize>, _> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::parse)
        .collect();
    let Ok(cohort) = cohort else {
        return Response::error(400, "query parameter 'workers' is malformed");
    };
    // `mode=seq` runs the sequential reference semantics (one singleton
    // solve per worker under one lock hold); the default is the cohort
    // solve — one shared candidate pool, one joint edge-reusing solve.
    let result = match req.param("mode") {
        None | Some("cohort") => state.assign_batch(&cohort),
        Some("seq") => state.assign_batch_sequential(&cohort),
        Some(_) => return Response::error(400, "query parameter 'mode' must be cohort or seq"),
    };
    match result {
        Ok(rs) => {
            let mut body = String::from("{\"assignments\":[");
            for (i, (w, r)) in cohort.iter().zip(&rs).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let ids: Vec<String> = r.tasks.iter().map(usize::to_string).collect();
                let _ = write!(
                    body,
                    "{{\"worker\":{w},\"tasks\":[{}],\"alpha\":{:.6},\"beta\":{:.6}}}",
                    ids.join(","),
                    r.alpha,
                    r.beta
                );
            }
            body.push_str("]}");
            Response::ok(body)
        }
        Err(e) => state_error(e),
    }
}

fn complete(state: &PlatformState, req: &Request) -> Response {
    let worker = match req.require::<usize>("worker") {
        Ok(w) => w,
        Err(e) => return Response::error(400, &e),
    };
    let task = match req.require::<usize>("task") {
        Ok(t) => t,
        Err(e) => return Response::error(400, &e),
    };
    // `ok` is the verification outcome for the worker's reputation;
    // omitted means the completion passed. Reputation is observational, so
    // the rest of the response and the platform's future behavior are
    // identical either way.
    let pass = match req.param("ok") {
        None | Some("true") | Some("1") => true,
        Some("false") | Some("0") => false,
        Some(_) => return Response::error(400, "query parameter 'ok' must be a boolean"),
    };
    match state.complete_with_outcome(worker, task, pass) {
        Ok(r) => Response::ok(format!(
            "{{\"alpha\":{:.6},\"beta\":{:.6},\"remaining\":{}}}",
            r.alpha, r.beta, r.remaining
        )),
        Err(e) => state_error(e),
    }
}

fn reputation(state: &PlatformState, req: &Request) -> Response {
    let worker = match req.require::<usize>("worker") {
        Ok(w) => w,
        Err(e) => return Response::error(400, &e),
    };
    match state.reputation(worker) {
        Ok(rep) => Response::ok(format!(
            "{{\"worker\":{worker},\"score\":{:.6},\"pool_score\":{:.6},\"beta_scale\":{:.6},\"pass_rate\":{:.6},\"observations\":{},\"passes\":{}}}",
            rep.score(),
            rep.pool_score(),
            rep.beta_scale(),
            rep.pass_rate(),
            rep.observations(),
            rep.passes()
        )),
        Err(e) => state_error(e),
    }
}

fn task_info(state: &PlatformState, req: &Request) -> Response {
    let id = match req.require::<usize>("id") {
        Ok(t) => t,
        Err(e) => return Response::error(400, &e),
    };
    match state.task_keywords(id) {
        None => Response::error(404, "unknown task"),
        Some(kws) => {
            let mut body = String::from("{\"keywords\":[");
            for (i, k) in kws.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(body, "{}", json_string(k));
            }
            body.push_str("]}");
            Response::ok(body)
        }
    }
}

/// The worker's exact top-k over open tasks. Scores travel as `f64` bit
/// patterns so a replica-served list can be compared bit-for-bit against
/// the primary's.
fn topk(state: &PlatformState, req: &Request) -> Response {
    let worker = match req.require::<usize>("worker") {
        Ok(w) => w,
        Err(e) => return Response::error(400, &e),
    };
    let k = match req.param("k") {
        None => CandidateMode::DEFAULT_K,
        Some(raw) => match raw.parse() {
            Ok(k) => k,
            Err(_) => return Response::error(400, "query parameter 'k' is malformed"),
        },
    };
    match state.worker_topk(worker, k) {
        Ok(list) => {
            let mut body = format!("{{\"worker\":{worker},\"tasks\":[");
            for (i, (task, score)) in list.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(body, "[{task},{}]", score.to_bits());
            }
            body.push_str("]}");
            Response::ok(body)
        }
        Err(e) => state_error(e),
    }
}

/// The worker's candidate pool under the state's configured mode.
fn candidates(state: &PlatformState, req: &Request) -> Response {
    let worker = match req.require::<usize>("worker") {
        Ok(w) => w,
        Err(e) => return Response::error(400, &e),
    };
    match state.candidate_pool(worker) {
        Ok((pool, topk_hits)) => {
            let ids: Vec<String> = pool.iter().map(u32::to_string).collect();
            Response::ok(format!(
                "{{\"worker\":{worker},\"pool\":[{}],\"topk_hits\":{topk_hits}}}",
                ids.join(",")
            ))
        }
        Err(e) => state_error(e),
    }
}

fn snapshot(state: &PlatformState, req: &Request) -> Response {
    let Some(path) = req.param("path") else {
        return Response::error(400, "missing query parameter 'path'");
    };
    match state.save_snapshot(Path::new(path)) {
        Ok(bytes) => Response::ok(format!(
            "{{\"path\":{},\"bytes\":{bytes}}}",
            json_string(path)
        )),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn stats(state: &PlatformState, serving: Option<&ServingMetrics>) -> Response {
    let s = state.stats();
    let shards = s
        .shard_sizes
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    // The platform-state fields come first and keep their exact shape —
    // snapshot tests compare these bodies across save/restore, and a
    // legacy-served `/stats` (no serving counters) must stay byte-stable.
    let mut body = format!(
        "{{\"workers\":{},\"open_tasks\":{},\"assigned_tasks\":{},\"completed_tasks\":{},\"indexed_tasks\":{},\"shards\":[{}],\"simd\":\"{}\",\"edge_cache_cap\":{}",
        s.workers,
        s.open_tasks,
        s.assigned_tasks,
        s.completed_tasks,
        s.indexed_tasks,
        shards,
        hta_core::kernels::mode_name(),
        s.edge_cache_cap
    );
    if let Some(m) = serving {
        let _ = write!(body, ",\"serving\":{}", m.to_json());
    }
    body.push('}');
    Response::ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_query;
    use hta_datagen::amt::{generate, AmtConfig};

    fn state() -> PlatformState {
        let w = generate(&AmtConfig {
            n_groups: 10,
            tasks_per_group: 6,
            vocab_size: 50,
            ..Default::default()
        });
        PlatformState::new(w.space, w.tasks, 4, 7)
    }

    fn req(method: &str, path: &str, query: &str) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            query: parse_query(query),
        }
    }

    #[test]
    fn full_api_flow() {
        let s = state();
        assert_eq!(handle(&s, &req("GET", "/health", "")).status, 200);

        let r = handle(&s, &req("POST", "/register", "keywords=english;survey"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"worker_id\":0"));

        let r = handle(&s, &req("POST", "/assign", "worker=0"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"tasks\":["));
        // Extract the first assigned task id from the JSON.
        let ids = r.body.split('[').nth(1).unwrap().split(']').next().unwrap();
        let first: usize = ids.split(',').next().unwrap().parse().unwrap();

        let r = handle(
            &s,
            &req("POST", "/complete", &format!("worker=0&task={first}")),
        );
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"remaining\":3"));

        let r = handle(&s, &req("GET", "/stats", ""));
        assert!(r.body.contains("\"completed_tasks\":1"));
        assert!(r.body.contains("\"shards\":["));

        let r = handle(&s, &req("GET", "/tasks", &format!("id={first}")));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"keywords\":["));
    }

    #[test]
    fn assign_batch_routes_and_modes() {
        let s = state();
        for kw in ["keywords=english;survey", "keywords=english;audio"] {
            assert_eq!(handle(&s, &req("POST", "/register", kw)).status, 200);
        }
        let r = handle(&s, &req("POST", "/assign_batch", "workers=0,1"));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"assignments\":["), "{}", r.body);
        assert!(r.body.contains("\"worker\":0"), "{}", r.body);

        let r = handle(&s, &req("POST", "/assign_batch", "workers=0&mode=seq"));
        assert_eq!(r.status, 200, "{}", r.body);

        assert_eq!(handle(&s, &req("POST", "/assign_batch", "")).status, 400);
        assert_eq!(
            handle(&s, &req("POST", "/assign_batch", "workers=a,b")).status,
            400
        );
        assert_eq!(
            handle(&s, &req("POST", "/assign_batch", "workers=0&mode=bogus")).status,
            400
        );
        assert_eq!(
            handle(&s, &req("POST", "/assign_batch", "workers=7")).status,
            404
        );
        assert_eq!(
            handle(&s, &req("GET", "/assign_batch", "workers=0")).status,
            405
        );
    }

    #[test]
    fn reputation_endpoint_tracks_outcomes() {
        let s = state();
        let _ = handle(&s, &req("POST", "/register", "keywords=english;survey"));
        let r = handle(&s, &req("GET", "/reputation", "worker=0"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"observations\":0"), "{}", r.body);
        assert!(r.body.contains("\"beta_scale\":1.000000"), "{}", r.body);

        let a = handle(&s, &req("POST", "/assign", "worker=0"));
        let ids = a.body.split('[').nth(1).unwrap().split(']').next().unwrap();
        let mut ids = ids.split(',').map(|t| t.parse::<usize>().unwrap());
        let t0 = ids.next().unwrap();
        let t1 = ids.next().unwrap();
        let fail = req("POST", "/complete", &format!("worker=0&task={t0}&ok=false"));
        assert_eq!(handle(&s, &fail).status, 200);
        let pass = req("POST", "/complete", &format!("worker=0&task={t1}"));
        assert_eq!(handle(&s, &pass).status, 200);
        let r = handle(&s, &req("GET", "/reputation", "worker=0"));
        assert!(r.body.contains("\"observations\":2"), "{}", r.body);
        assert!(r.body.contains("\"passes\":1"), "{}", r.body);

        assert_eq!(
            handle(&s, &req("GET", "/reputation", "worker=9")).status,
            404
        );
        assert_eq!(handle(&s, &req("GET", "/reputation", "")).status, 400);
        assert_eq!(
            handle(&s, &req("POST", "/reputation", "worker=0")).status,
            405
        );
        assert_eq!(
            handle(&s, &req("POST", "/complete", "worker=0&task=1&ok=maybe")).status,
            400
        );
    }

    #[test]
    fn stats_reports_the_active_simd_mode() {
        let s = state();
        let r = handle(&s, &req("GET", "/stats", ""));
        let expected = format!("\"simd\":\"{}\"", hta_core::kernels::mode_name());
        assert!(r.body.contains(&expected), "{}", r.body);
    }

    #[test]
    fn stats_reports_the_resolved_edge_cache_cap() {
        let s = state();
        let r = handle(&s, &req("GET", "/stats", ""));
        let expected = format!("\"edge_cache_cap\":{}", s.edge_cache_cap());
        assert!(r.body.contains(&expected), "{}", r.body);
        s.set_edge_cache_cap(123);
        let r = handle(&s, &req("GET", "/stats", ""));
        assert!(r.body.contains("\"edge_cache_cap\":123"), "{}", r.body);
    }

    #[test]
    fn stats_serving_fragment_only_when_metrics_supplied() {
        let s = state();
        let plain = handle(&s, &req("GET", "/stats", ""));
        assert!(!plain.body.contains("\"serving\""));
        let metrics = crate::metrics::ServingMetrics::new(std::sync::Arc::new(
            hta_net::NetMetrics::default(),
        ));
        let with = handle_with_metrics(&s, &req("GET", "/stats", ""), Some(&metrics));
        assert!(with.body.contains("\"serving\":{"), "{}", with.body);
        assert!(
            with.body.starts_with(plain.body.trim_end_matches('}')),
            "platform-state prefix is unchanged"
        );
    }

    #[test]
    fn snapshot_endpoint_saves_a_restorable_file() {
        let dir = std::env::temp_dir().join(format!("hta-svc-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.htasnap");

        let s = state();
        let _ = handle(&s, &req("POST", "/register", "keywords=english;survey"));
        let _ = handle(&s, &req("POST", "/assign", "worker=0"));

        let r = handle(
            &s,
            &req("POST", "/snapshot", &format!("path={}", path.display())),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"bytes\":"));

        let restored = PlatformState::restore(&path).expect("restore");
        assert_eq!(
            handle(&restored, &req("GET", "/stats", "")).body,
            handle(&s, &req("GET", "/stats", "")).body,
            "restored /stats diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_endpoint_error_paths() {
        let s = state();
        assert_eq!(handle(&s, &req("POST", "/snapshot", "")).status, 400);
        assert_eq!(handle(&s, &req("GET", "/snapshot", "path=x")).status, 405);
        // Unwritable destination surfaces as a server-side error, and the
        // serving state is untouched.
        let r = handle(
            &s,
            &req("POST", "/snapshot", "path=/nonexistent-dir/state.htasnap"),
        );
        assert_eq!(r.status, 500);
        assert_eq!(handle(&s, &req("GET", "/stats", "")).status, 200);
    }

    #[test]
    fn error_statuses() {
        let s = state();
        assert_eq!(handle(&s, &req("GET", "/nope", "")).status, 404);
        assert_eq!(handle(&s, &req("GET", "/assign", "worker=0")).status, 405);
        assert_eq!(handle(&s, &req("POST", "/assign", "")).status, 400);
        assert_eq!(handle(&s, &req("POST", "/assign", "worker=9")).status, 404);
        assert_eq!(handle(&s, &req("POST", "/register", "")).status, 400);
        assert_eq!(
            handle(&s, &req("POST", "/register", "keywords=")).status,
            400
        );
        let _ = handle(&s, &req("POST", "/register", "keywords=a"));
        assert_eq!(
            handle(&s, &req("POST", "/complete", "worker=0&task=3")).status,
            409
        );
        assert_eq!(handle(&s, &req("GET", "/tasks", "id=99999")).status, 404);
        assert_eq!(handle(&s, &req("GET", "/tasks", "id=x")).status, 400);
    }
}
