//! # hta-server — the crowdsourcing platform as an HTTP service
//!
//! The paper deployed a home-grown crowdsourcing platform whose assignment
//! service implements the Figure 4 workflow: workers register with their
//! keywords, receive solver-assigned task sets, and report completions that
//! feed the adaptive `(α, β)` estimation. This crate exposes exactly that
//! workflow over HTTP, so the library can be driven by real clients (a web
//! front-end, a load generator, `curl`).
//!
//! Std-only by design: the offline dependency policy (DESIGN.md §5) rules
//! out web frameworks. The serving core is `hta-net`'s epoll reactor —
//! keep-alive HTTP/1.1 connections multiplexed on a few event-loop
//! threads, CPU-heavy solves on a bounded worker pool with `503`
//! backpressure ([`server`]); the original thread-per-connection loop is
//! kept as the measured baseline ([`legacy`]).
//!
//! ```no_run
//! use std::sync::Arc;
//! use hta_datagen::amt::{generate, AmtConfig};
//! use hta_server::{PlatformState, Server};
//!
//! let workload = generate(&AmtConfig::default());
//! let state = Arc::new(PlatformState::new(workload.space, workload.tasks, 15, 42));
//! let server = Server::spawn("127.0.0.1:8080", state).unwrap();
//! println!("serving on {}", server.addr());
//! // … later:
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod http;
pub mod legacy;
pub mod metrics;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod state;

pub use cluster::{AppliedEpoch, ClusterCtx, Role};
pub use legacy::LegacyServer;
pub use metrics::ServingMetrics;
pub use server::{ServeOptions, Server};
pub use snapshot::ServerSnapshotError;
pub use state::{AssignResult, CompleteResult, PlatformState, Stats};
