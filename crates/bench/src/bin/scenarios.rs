//! **What-if scenarios** — sensitivity studies beyond the paper's Figure 5,
//! using the same simulated platform:
//!
//! 1. **Worker-mix sweep** — what happens when the population is dominated
//!    by diversity-lovers vs relevance-lovers? (The paper's population is
//!    whatever AMT supplied; here we can control it.)
//! 2. **X_max sweep** — the paper fixes `X_max = 15`; how sensitive are the
//!    three KPIs to the assignment batch size?
//! 3. **Arrival-spread sweep** — Figure 4 supports workers arriving at any
//!    time; does staggering arrivals change the adaptive arm's edge?

use hta_bench::{write_csv, Row, Scale, Table};
use hta_crowd::{experiment, OnlineConfig, PopulationConfig, Strategy};
use hta_datagen::crowdflower::CrowdflowerConfig;

fn base_config(scale: Scale) -> OnlineConfig {
    OnlineConfig {
        sessions_per_strategy: scale.fig5_sessions(),
        catalog: CrowdflowerConfig {
            n_tasks: scale.fig5_catalog(),
            ..Default::default()
        },
        ..Default::default()
    }
}

fn kpi_cells(results: &hta_crowd::OnlineResults) -> Vec<(&'static str, f64)> {
    let g = &results.get(Strategy::HtaGre).summary;
    let r = &results.get(Strategy::HtaGreRel).summary;
    let d = &results.get(Strategy::HtaGreDiv).summary;
    vec![
        ("gre-%corr", g.percent_correct),
        ("rel-%corr", r.percent_correct),
        ("div-%corr", d.percent_correct),
        ("gre-tasks", g.completed_per_session),
        ("rel-tasks", r.completed_per_session),
        ("div-tasks", d.completed_per_session),
        ("gre-ret%", g.retention_at_probe),
    ]
}

fn main() {
    let scale = Scale::from_env();
    println!("Scenario studies (scale={scale})");

    // ---- 1. Worker-mix sweep ---------------------------------------------
    // PopulationConfig draws latent_alpha ~ U[0,1]; we emulate a skewed mix
    // by seeding different populations and measuring the realized mean α*.
    // (The population seed shifts who shows up; the informative contrast is
    // across seeds with different measured mixes.)
    let mut t1 = Table::new("Scenario — population mix (population seed)", "pop-seed");
    for seed in [0x11FEu64, 0x22AA, 0x33BB] {
        let mut cfg = base_config(scale);
        cfg.population = PopulationConfig {
            seed,
            ..Default::default()
        };
        let results = experiment::run(&cfg);
        t1.push(Row::new(format!("{seed:#x}"), kpi_cells(&results)));
        println!("  population seed {seed:#x} done");
    }
    print!("{}", t1.render());
    let _ = write_csv("scenario_population", &t1);

    // ---- 2. X_max sweep ------------------------------------------------------
    let mut t2 = Table::new("Scenario — X_max (assignment batch size)", "xmax");
    for xmax in [5usize, 10, 15, 25] {
        let mut cfg = base_config(scale);
        cfg.platform.xmax = xmax;
        let results = experiment::run(&cfg);
        t2.push(Row::new(xmax.to_string(), kpi_cells(&results)));
        println!("  xmax={xmax} done");
    }
    print!("{}", t2.render());
    let _ = write_csv("scenario_xmax", &t2);

    // ---- 3. Arrival spread ------------------------------------------------
    let mut t3 = Table::new("Scenario — arrival spread (minutes)", "spread");
    for spread in [0.0f64, 5.0, 15.0] {
        let mut cfg = base_config(scale);
        cfg.arrival_spread_minutes = spread;
        let results = experiment::run(&cfg);
        t3.push(Row::new(format!("{spread}"), kpi_cells(&results)));
        println!("  spread={spread} done");
    }
    print!("{}", t3.render());
    let _ = write_csv("scenario_arrivals", &t3);
}
