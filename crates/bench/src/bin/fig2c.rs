//! **Figure 2c** — response time vs. number of workers.
//!
//! The paper's analysis: the Hungarian-family solver in HTA-APP slows down
//! as workers *increase* because fewer zero-profit columns mean less early
//! termination; HTA-GRE's sort-based greedy is nearly flat. We also report
//! the JV phase statistics (rows assigned in column reduction, shortest
//! augmenting path calls) that substantiate that explanation.

use hta_bench::{build_instance, write_csv, Row, Scale, SweepCheckpoint, Table};
use hta_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let spec = scale.fig2c_workers();
    let n_tasks = scale.fig2c_tasks();
    let runs = scale.runs();
    println!(
        "Figure 2c (scale={scale}): response time vs |W|; |T|={n_tasks}, Xmax={}, {} groups",
        spec.xmax, spec.n_groups
    );

    let mut table = Table::new("Fig 2c — response time (s) vs number of workers", "|W|");
    let mut ckpt = SweepCheckpoint::open("fig2c", &format!("{scale}:{runs}:{n_tasks}:{spec:?}"));
    if ckpt.restored() > 0 {
        println!(
            "  resuming: {} point(s) restored from checkpoint",
            ckpt.restored()
        );
    }
    ckpt.replay(&mut table);
    for &n_workers in &spec.sweep {
        if ckpt.is_done(&n_workers.to_string()) {
            continue;
        }
        let inst = build_instance(n_tasks, spec.n_groups, n_workers, spec.xmax, 0xF26C);
        let mut app_t = 0.0;
        let mut apph_t = 0.0;
        let mut gre_t = 0.0;
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(run as u64);
            app_t += HtaApp::new()
                .solve(&inst, &mut rng)
                .timings
                .total
                .as_secs_f64();
            let mut rng = StdRng::seed_from_u64(run as u64);
            apph_t += HtaApp::new()
                .with_classic_hungarian()
                .solve(&inst, &mut rng)
                .timings
                .total
                .as_secs_f64();
            let mut rng = StdRng::seed_from_u64(run as u64);
            gre_t += HtaGre::new()
                .solve(&inst, &mut rng)
                .timings
                .total
                .as_secs_f64();
        }
        let r = runs as f64;
        let row = Row::new(
            n_workers.to_string(),
            vec![
                ("hta-app", app_t / r),
                ("hta-app-hungarian", apph_t / r),
                ("hta-gre", gre_t / r),
            ],
        );
        table.push(row.clone());
        ckpt.record(row);
        println!("  |W|={n_workers} done");
    }
    print!("{}", table.render());
    match write_csv("fig2c", &table) {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    ckpt.finish();
}
