//! **Figure 2a** — response time vs. number of tasks, with the
//! Matching/LSAP phase split.
//!
//! Paper setting: `|T| ∈ {4k, …, 10k}`, `|W| = 200`, `X_max = 20`, 200 task
//! groups, synthetic workers; HTA-APP's cubic LSAP dominates while HTA-GRE
//! grows as `n² log n`. Scaled sweeps via `HTA_SCALE` (see DESIGN.md §3).

use hta_bench::{build_instance, time_it, write_csv, Row, Scale, SweepCheckpoint, Table};
use hta_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let spec = scale.fig2_tasks();
    let runs = scale.runs();
    println!(
        "Figure 2a (scale={scale}): response time vs |T|; |W|={}, Xmax={}, {} groups, {} run(s)/point",
        spec.n_workers, spec.xmax, spec.n_groups, runs
    );

    let mut table = Table::new("Fig 2a — response time (s) vs number of tasks", "|T|");
    let mut ckpt = SweepCheckpoint::open("fig2a", &format!("{scale}:{runs}:{spec:?}"));
    if ckpt.restored() > 0 {
        println!(
            "  resuming: {} point(s) restored from checkpoint",
            ckpt.restored()
        );
    }
    ckpt.replay(&mut table);
    for &n_tasks in &spec.sweep {
        if ckpt.is_done(&n_tasks.to_string()) {
            continue;
        }
        let inst = build_instance(n_tasks, spec.n_groups, spec.n_workers, spec.xmax, 0xF26A);
        let mut cells: Vec<(&str, f64)> = Vec::new();
        for (name, solver) in [
            ("hta-app", Box::new(HtaApp::new()) as Box<dyn Solver>),
            (
                "hta-app-hungarian",
                Box::new(HtaApp::new().with_classic_hungarian()),
            ),
            ("hta-gre", Box::new(HtaGre::new())),
        ] {
            let (mut matching, mut lsap, mut total) = (0.0, 0.0, 0.0);
            for run in 0..runs {
                let mut rng = StdRng::seed_from_u64(run as u64);
                let (out, _) = time_it(|| solver.solve(&inst, &mut rng));
                matching += out.timings.matching.as_secs_f64();
                lsap += out.timings.lsap.as_secs_f64();
                total += out.timings.total.as_secs_f64();
            }
            let r = runs as f64;
            let (m_col, l_col, t_col) = match name {
                "hta-app" => ("app-matching", "app-lsap", "app-total"),
                "hta-app-hungarian" => ("appH-matching", "appH-lsap", "appH-total"),
                _ => ("gre-matching", "gre-lsap", "gre-total"),
            };
            cells.push((m_col, matching / r));
            cells.push((l_col, lsap / r));
            cells.push((t_col, total / r));
        }
        let row = Row::new(n_tasks.to_string(), cells);
        table.push(row.clone());
        ckpt.record(row);
        println!("  |T|={n_tasks} done");
    }
    print!("{}", table.render());
    match write_csv("fig2a", &table) {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    ckpt.finish();
}
