//! **Figure 3** — effect of task diversity: response time vs. the number of
//! task groups at a fixed task count.
//!
//! With few groups, many tasks share keywords, the LSAP profit matrix is
//! highly degenerate, and the Hungarian-family solver terminates early;
//! with many groups the profits are diverse and HTA-APP pays its full
//! cubic cost. HTA-GRE is oblivious to diversity. The paper's caption says
//! `|T| = 10³` but the body text fixes `|T| = 10,000`; we follow the text
//! (DESIGN.md §3). Alongside timings we print the JV phase statistics that
//! explain the effect.

use hta_bench::{build_instance, write_csv, Row, Scale, SweepCheckpoint, Table};
use hta_core::prelude::*;
use hta_core::qap::{c_entry, deg_a, worker_of_vertex};
use hta_matching::lsap::jv;
use hta_matching::{greedy_matching, DenseMatrix, WeightedEdge};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rebuild the auxiliary LSAP profits exactly as the pipeline does, to
/// extract the JV phase statistics for the analysis columns.
fn jv_stats(inst: &Instance) -> (usize, usize) {
    let n_real = inst.n_tasks();
    let n = n_real.max(inst.n_workers() * inst.xmax());
    let mut edges = Vec::new();
    for u in 0..n_real {
        for v in (u + 1)..n_real {
            let w = inst.diversity(u, v);
            if w > 0.0 {
                edges.push(WeightedEdge::new(u as u32, v as u32, w));
            }
        }
    }
    let mb = greedy_matching(n, &edges);
    let mut bm = vec![0.0f64; n];
    for e in mb.edges() {
        bm[e.u as usize] = e.weight;
        bm[e.v as usize] = e.weight;
    }
    let costs = DenseMatrix::from_fn(n, |k, l| {
        if k >= n_real || worker_of_vertex(l, inst.xmax(), inst.n_workers()).is_none() {
            0.0
        } else {
            bm[k] * deg_a(inst, l) + c_entry(inst, k, l)
        }
    });
    let stats = jv::solve_with_stats(&costs);
    (
        stats.assigned_in_column_reduction,
        stats.augmenting_path_calls,
    )
}

fn main() {
    let scale = Scale::from_env();
    let n_tasks = scale.fig3_tasks();
    let n_workers = scale.fig3_workers();
    let xmax = if matches!(scale, Scale::Tiny) { 5 } else { 20 };
    let runs = scale.runs();
    println!(
        "Figure 3 (scale={scale}): response time vs #task groups; |T|={n_tasks}, |W|={n_workers}, Xmax={xmax}"
    );

    let mut table = Table::new("Fig 3 — effect of task diversity (s)", "#groups");
    let mut ckpt = SweepCheckpoint::open(
        "fig3",
        &format!(
            "{scale}:{runs}:{n_tasks}:{n_workers}:{xmax}:{:?}",
            scale.fig3_groups()
        ),
    );
    if ckpt.restored() > 0 {
        println!(
            "  resuming: {} point(s) restored from checkpoint",
            ckpt.restored()
        );
    }
    ckpt.replay(&mut table);
    for &groups in &scale.fig3_groups() {
        if ckpt.is_done(&groups.to_string()) {
            continue;
        }
        let inst = build_instance(n_tasks, groups, n_workers, xmax, 0xF3);
        let mut app_t = 0.0;
        let mut gre_t = 0.0;
        for run in 0..runs {
            let mut rng_a = StdRng::seed_from_u64(run as u64);
            let mut rng_g = StdRng::seed_from_u64(run as u64);
            app_t += HtaApp::new()
                .solve(&inst, &mut rng_a)
                .timings
                .total
                .as_secs_f64();
            gre_t += HtaGre::new()
                .solve(&inst, &mut rng_g)
                .timings
                .total
                .as_secs_f64();
        }
        let (col_red, aug_calls) = jv_stats(&inst);
        let r = runs as f64;
        let row = Row::new(
            groups.to_string(),
            vec![
                ("hta-app", app_t / r),
                ("hta-gre", gre_t / r),
                ("jv-colred-rows", col_red as f64),
                ("jv-aug-paths", aug_calls as f64),
            ],
        );
        table.push(row.clone());
        ckpt.record(row);
        println!("  #groups={groups} done");
    }
    print!("{}", table.render());
    match write_csv("fig3", &table) {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    ckpt.finish();
}
