//! Grid search over the behaviour-model knobs, scoring each configuration
//! against the paper's Figure 5 targets (orderings first, magnitudes
//! second). Used to produce the defaults in `BehaviorConfig`; kept in the
//! repository so the calibration is reproducible and extensible.

use hta_crowd::{experiment, BehaviorConfig, OnlineConfig, PopulationConfig, Strategy};
use hta_datagen::crowdflower::CrowdflowerConfig;

struct Outcome {
    q_gre: f64,
    q_rel: f64,
    q_div: f64,
    t_gre: f64,
    t_rel: f64,
    t_div: f64,
    r_gre: f64,
    r_rel: f64,
    r_div: f64,
    r_rnd: f64,
    min_gre: f64,
}

fn evaluate(b: &BehaviorConfig, sessions: usize) -> Outcome {
    let mut cfg = OnlineConfig {
        sessions_per_strategy: sessions,
        catalog: CrowdflowerConfig {
            n_tasks: 6000,
            ..Default::default()
        },
        population: PopulationConfig::default(),
        ..Default::default()
    };
    cfg.platform.behavior = b.clone();
    let res = experiment::run(&cfg);
    let s = |x: Strategy| res.get(x).summary.clone();
    let (g, r, d, rnd) = (
        s(Strategy::HtaGre),
        s(Strategy::HtaGreRel),
        s(Strategy::HtaGreDiv),
        s(Strategy::Random),
    );
    Outcome {
        q_gre: g.percent_correct,
        q_rel: r.percent_correct,
        q_div: d.percent_correct,
        t_gre: g.completed_per_session,
        t_rel: r.completed_per_session,
        t_div: d.completed_per_session,
        r_gre: g.retention_at_probe,
        r_rel: r.retention_at_probe,
        r_div: d.retention_at_probe,
        r_rnd: rnd.retention_at_probe,
        min_gre: g.mean_session_minutes,
    }
}

/// Lower is better. Hard ordering violations cost 100 each; magnitudes are
/// L1 distances to the paper's reported values.
fn score(o: &Outcome) -> f64 {
    let mut s = 0.0;
    let viol = |bad: bool| if bad { 100.0 } else { 0.0 };
    s += viol(o.q_div <= o.q_gre + 1.0);
    s += viol(o.q_gre <= o.q_rel + 3.0);
    s += viol(o.t_gre <= o.t_rel);
    s += viol(o.t_rel <= o.t_div);
    s += viol(o.r_gre <= o.r_rel);
    s += viol(o.r_gre <= o.r_div);
    s += viol(o.r_gre <= o.r_rnd);
    s += (o.q_div - 81.9).abs() * 0.5;
    s += (o.q_gre - 75.5).abs() * 0.5;
    s += (o.q_rel - 65.0).abs() * 0.5;
    s += (o.t_gre - 36.7).abs() * 0.4;
    s += (o.t_rel - 33.3).abs() * 0.4;
    s += (o.t_div - 31.8).abs() * 0.4;
    s += (o.r_gre - 85.0).abs() * 0.2;
    s += (o.min_gre - 22.3).abs() * 0.5;
    s
}

fn main() {
    let sessions: usize = std::env::var("HTA_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let mut best: Option<(f64, BehaviorConfig, Outcome)> = None;

    for &fam in &[0.25f64, 0.40] {
        for &slow in &[0.30f64, 0.60] {
            for &bq in &[0.06f64, 0.12] {
                for &dq in &[0.02f64, 0.04] {
                    for &oq in &[0.06f64, 0.10] {
                        for &base in &[0.0008f64, 0.0015] {
                            let b = BehaviorConfig {
                                boredom_up_rate: 0.45,
                                boredom_penalty: 0.60,
                                familiarity_speedup: fam,
                                boredom_slowdown: slow,
                                boredom_quit_weight: bq,
                                disengagement_quit_weight: dq,
                                overload_quit_weight: oq,
                                base_quit_hazard: base,
                                ..BehaviorConfig::default()
                            };
                            let o = evaluate(&b, sessions);
                            let sc = score(&o);
                            println!(
                                "fam={fam:.2} slow={slow:.2} bq={bq:.2} dq={dq:.2} oq={oq:.2} base={base:.4} | \
                                 q=({:.1},{:.1},{:.1}) t=({:.1},{:.1},{:.1}) r=({:.0},{:.0},{:.0},{:.0}) min={:.1} -> {sc:.1}",
                                o.q_div, o.q_gre, o.q_rel, o.t_gre, o.t_rel, o.t_div,
                                o.r_gre, o.r_rel, o.r_div, o.r_rnd, o.min_gre
                            );
                            if best.as_ref().is_none_or(|(bs, _, _)| sc < *bs) {
                                best = Some((sc, b, o));
                            }
                        }
                    }
                }
            }
        }
    }
    if let Some((sc, b, _)) = best {
        println!("\nBEST score {sc:.2}: {b:#?}");
    }
}
