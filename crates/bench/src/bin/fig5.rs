//! **Figure 5** — the online experiment (Section V-C): crowdwork quality
//! (5a), task throughput (5b), and worker retention (5c) for the four
//! strategies, on the simulated platform.
//!
//! Paper reference points (live AMT, 20 sessions/strategy):
//! * quality: Hta-Gre-Div 81.9% > Hta-Gre 75.5% > Hta-Gre-Rel 65.0%;
//! * throughput: Hta-Gre 734 > Hta-Gre-Rel 666 > Hta-Gre-Div 636 tasks;
//! * retention: Hta-Gre best (85% of sessions exceed 18.2 minutes);
//! * Hta-Gre averages 36.7 tasks/session over 22.3 minutes.

use hta_bench::{write_csv, Row, Scale, Table};
use hta_crowd::PopulationConfig;
use hta_crowd::{experiment, OnlineConfig, Strategy};
use hta_datagen::crowdflower::CrowdflowerConfig;

fn main() {
    let scale = Scale::from_env();
    let cfg = OnlineConfig {
        sessions_per_strategy: scale.fig5_sessions(),
        catalog: CrowdflowerConfig {
            n_tasks: scale.fig5_catalog(),
            ..Default::default()
        },
        population: PopulationConfig::default(),
        ..Default::default()
    };
    println!(
        "Figure 5 (scale={scale}): {} sessions/strategy, catalog of {} tasks, Xmax={}, +{} random",
        cfg.sessions_per_strategy,
        cfg.catalog.n_tasks,
        cfg.platform.xmax,
        cfg.platform.display_extra_random
    );

    let results = experiment::run(&cfg);

    // ---- Summary (the numbers quoted in Section V-C) ---------------------
    let mut summary = Table::new("Fig 5 — end-of-session summary", "strategy");
    for r in &results.per_strategy {
        summary.push(Row::new(
            r.strategy.name(),
            vec![
                ("%correct", r.summary.percent_correct),
                ("completed", r.summary.total_completed as f64),
                ("tasks/session", r.summary.completed_per_session),
                ("mean-min", r.summary.mean_session_minutes),
                ("%>18.2min", r.summary.retention_at_probe),
            ],
        ));
    }
    print!("{}", summary.render());
    let _ = write_csv("fig5_summary", &summary);

    // ---- Time series (5a, 5b, 5c) ----------------------------------------
    for (name, series_of) in [
        ("fig5a_quality", 0usize),
        ("fig5b_throughput", 1),
        ("fig5c_retention", 2),
    ] {
        let mut t = Table::new(name, "minute");
        let minutes = results.per_strategy[0].quality.minutes.clone();
        for (i, &m) in minutes.iter().enumerate() {
            let cells: Vec<(&str, f64)> = results
                .per_strategy
                .iter()
                .map(|r| {
                    let v = match series_of {
                        0 => r.quality.values[i],
                        1 => r.throughput.values[i],
                        _ => r.retention.values[i],
                    };
                    (r.strategy.name(), v)
                })
                .collect();
            t.push(Row::new(format!("{m}"), cells));
        }
        match write_csv(name, &t) {
            Ok(p) => println!("CSV written to {}", p.display()),
            Err(e) => eprintln!("CSV write failed: {e}"),
        }
    }

    // ---- Markdown report ---------------------------------------------------
    let report = hta_crowd::report_markdown(&results);
    let report_path = hta_bench::csv_path("fig5_report").with_extension("md");
    if let Some(dir) = report_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&report_path, &report) {
        Ok(()) => println!("Markdown report written to {}", report_path.display()),
        Err(e) => eprintln!("report write failed: {e}"),
    }

    // ---- Significance tests (as quoted in the paper) ----------------------
    println!("\nSignificance tests:");
    if let Some(t) = results.quality_test(Strategy::HtaGreDiv, Strategy::HtaGre) {
        println!(
            "  quality  Div vs Gre   (two-prop Z): z={:+.2}, one-sided p={:.3} (paper: 0.06)",
            t.statistic, t.p_one_sided
        );
    }
    if let Some(t) = results.quality_test(Strategy::HtaGre, Strategy::HtaGreRel) {
        println!(
            "  quality  Gre vs Rel   (two-prop Z): z={:+.2}, one-sided p={:.3} (paper: 0.01)",
            t.statistic, t.p_one_sided
        );
    }
    if let Some(t) = results.throughput_test(Strategy::HtaGre, Strategy::HtaGreDiv) {
        println!(
            "  tasks    Gre vs Div   (Mann-Whitney): z={:+.2}, one-sided p={:.3} (paper: 0.05)",
            t.statistic, t.p_one_sided
        );
    }
    if let Some(t) = results.retention_test(Strategy::HtaGre, Strategy::HtaGreRel) {
        println!(
            "  duration Gre vs Rel   (Mann-Whitney): z={:+.2}, one-sided p={:.3} (paper: 0.1)",
            t.statistic, t.p_one_sided
        );
    }
    if let Some(t) = results.retention_test(Strategy::HtaGre, Strategy::HtaGreDiv) {
        println!(
            "  duration Gre vs Div   (Mann-Whitney): z={:+.2}, one-sided p={:.3} (paper: 0.1)",
            t.statistic, t.p_one_sided
        );
    }
}
