//! `hta-loadgen` — HTTP load generator for the platform service.
//!
//! ```text
//! hta-loadgen [--addr HOST:PORT | --topology A:P,B:P,... | --spawn ...]
//!             [--conns K] [--duration-secs S] [--mode closed|open]
//!             [--pipeline D] [--endpoint PATH] [--method M]
//!             [--listen-threads N] [--solver-pool N]
//!             [--json PATH] [--fail-on-5xx] [--allow-503]
//! ```
//!
//! Drives `K` concurrent keep-alive connections for `S` seconds and reports
//! throughput plus a latency distribution (p50/p95/p99/max). In the default
//! **closed-loop** mode each connection keeps exactly one request in flight
//! (latency includes queueing under load); **open** mode pipelines up to
//! `--pipeline` requests per connection, decoupling arrival from completion.
//!
//! `--topology` fans the same load over several addresses — a replicated
//! serving cluster's read path (`hta cluster`, DESIGN.md §14). Connections
//! are pinned round-robin to the listed targets and the report carries a
//! per-target breakdown (req/s, latency quantiles, status counts per
//! address) alongside the combined totals.
//!
//! With `--spawn both` (the default when no `--addr` is given) it starts the
//! epoll-reactor server and the legacy thread-per-connection server in turn
//! over the same generated corpus, runs an identical load against each, and
//! writes the comparison to `BENCH_server.json`. Servers that close the
//! connection after a response (the legacy baseline has no keep-alive) are
//! handled by transparent reconnects, which are counted in the report.

use std::io::{self, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hta_net::client;
use hta_server::{LegacyServer, PlatformState, ServeOptions, Server};

#[derive(Clone)]
struct LoadConfig {
    conns: usize,
    duration: Duration,
    /// Max requests in flight per connection: 1 = closed loop.
    pipeline: usize,
    method: String,
    endpoint: String,
}

#[derive(Default)]
struct LoadReport {
    requests: u64,
    ok_2xx: u64,
    client_4xx: u64,
    server_5xx: u64,
    /// `503 Retry-After` backpressure answers, a subset of `server_5xx`
    /// (expected under deliberate saturation; see `--allow-503`).
    server_503: u64,
    reconnects: u64,
    io_errors: u64,
    elapsed: Duration,
    latencies_us: Vec<u64>,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.requests += other.requests;
        self.ok_2xx += other.ok_2xx;
        self.client_4xx += other.client_4xx;
        self.server_5xx += other.server_5xx;
        self.server_503 += other.server_503;
        self.reconnects += other.reconnects;
        self.io_errors += other.io_errors;
        self.latencies_us.extend(other.latencies_us);
    }

    fn merge_from(&mut self, other: &LoadReport) {
        self.requests += other.requests;
        self.ok_2xx += other.ok_2xx;
        self.client_4xx += other.client_4xx;
        self.server_5xx += other.server_5xx;
        self.server_503 += other.server_503;
        self.reconnects += other.reconnects;
        self.io_errors += other.io_errors;
        self.latencies_us.extend_from_slice(&other.latencies_us);
    }

    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.latencies_us[idx]
    }

    fn finalize(&mut self, elapsed: Duration) {
        self.elapsed = elapsed;
        self.latencies_us.sort_unstable();
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\":{},\"rps\":{:.1},\"status\":{{\"2xx\":{},",
                "\"4xx\":{},\"5xx\":{},\"503\":{}}},\"reconnects\":{},\"io_errors\":{},",
                "\"latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}}}"
            ),
            self.requests,
            self.rps(),
            self.ok_2xx,
            self.client_4xx,
            self.server_5xx,
            self.server_503,
            self.reconnects,
            self.io_errors,
            self.quantile_us(0.50),
            self.quantile_us(0.95),
            self.quantile_us(0.99),
            self.latencies_us.last().copied().unwrap_or(0),
        )
    }
}

/// One connection's worth of load: keep up to `pipeline` requests in
/// flight, reconnecting whenever the server closes the connection.
fn drive_connection(addr: &str, cfg: &LoadConfig, stop: &AtomicBool) -> LoadReport {
    let mut report = LoadReport::default();
    let wire = client::request_bytes(&cfg.method, &cfg.endpoint, true);
    let mut conn: Option<(TcpStream, BufReader<TcpStream>)> = None;
    // Send timestamps of requests currently in flight, oldest first.
    let mut in_flight: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();

    while !stop.load(Ordering::Relaxed) || !in_flight.is_empty() {
        if conn.is_none() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            match TcpStream::connect(addr) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
                    let r = BufReader::new(s.try_clone().expect("clone stream"));
                    in_flight.clear();
                    conn = Some((s, r));
                }
                Err(_) => {
                    report.io_errors += 1;
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            }
        }

        let mut drop_conn = false;
        {
            let (stream, reader) = conn.as_mut().expect("connection is live");
            // Fill the pipeline window (exactly 1 in closed-loop mode).
            while in_flight.len() < cfg.pipeline && !stop.load(Ordering::Relaxed) {
                // Stamp at write start: per-request latency spans the
                // request write through response completion, and never the
                // TCP connect that preceded it — the legacy baseline
                // reconnects per request, and its handshake cost is
                // reported via `reconnects`, not smuggled into p99.
                let sent = Instant::now();
                match stream.write_all(&wire) {
                    Ok(()) => in_flight.push_back(sent),
                    Err(_) => {
                        report.io_errors += 1;
                        drop_conn = true;
                        break;
                    }
                }
            }
            if drop_conn {
                // Requests that never left die with the socket.
                in_flight.clear();
            } else {
                if in_flight.is_empty() {
                    break;
                }
                match client::read_response(reader) {
                    Ok(resp) => {
                        let sent = in_flight.pop_front().expect("response matches a request");
                        report.requests += 1;
                        report.latencies_us.push(sent.elapsed().as_micros() as u64);
                        match resp.status {
                            200..=299 => report.ok_2xx += 1,
                            400..=499 => report.client_4xx += 1,
                            503 => {
                                report.server_5xx += 1;
                                report.server_503 += 1;
                            }
                            _ => report.server_5xx += 1,
                        }
                        if !resp.keep_alive() {
                            // Unanswered pipelined requests die with the socket.
                            in_flight.clear();
                            drop_conn = true;
                        }
                    }
                    Err(_) => {
                        report.io_errors += 1;
                        in_flight.clear();
                        drop_conn = true;
                    }
                }
            }
        }
        if drop_conn {
            conn = None;
            report.reconnects += 1;
        }
    }
    report
}

fn run_load(addr: &str, cfg: &LoadConfig) -> LoadReport {
    run_load_targets(std::slice::from_ref(&addr.to_owned()), cfg).0
}

/// Drive the load over several targets at once: connection `i` is pinned
/// to `addrs[i % addrs.len()]`, so the offered load splits evenly.
/// Returns the combined report plus one report per target (same order as
/// `addrs`), all sharing the same wall-clock window so their `rps()` add
/// up to the combined figure.
fn run_load_targets(addrs: &[String], cfg: &LoadConfig) -> (LoadReport, Vec<LoadReport>) {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let workers: Vec<(usize, std::thread::JoinHandle<LoadReport>)> = (0..cfg.conns)
        .map(|i| {
            let target = i % addrs.len();
            let addr = addrs[target].clone();
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            (
                target,
                std::thread::spawn(move || drive_connection(&addr, &cfg, &stop)),
            )
        })
        .collect();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut per_target: Vec<LoadReport> = addrs.iter().map(|_| LoadReport::default()).collect();
    for (target, w) in workers {
        per_target[target].merge(w.join().expect("load thread panicked"));
    }
    let elapsed = start.elapsed();
    let mut combined = LoadReport::default();
    for r in &mut per_target {
        combined.merge_from(r);
        r.finalize(elapsed);
    }
    combined.finalize(elapsed);
    (combined, per_target)
}

fn corpus_state() -> PlatformState {
    let w = hta_datagen::amt::generate(&hta_datagen::amt::AmtConfig {
        n_groups: 100,
        tasks_per_group: 10,
        ..Default::default()
    });
    PlatformState::new(w.space, w.tasks, 15, 0x5E11)
}

fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a valid value");
        std::process::exit(2);
    })
}

fn main() -> io::Result<()> {
    let mut addr: Option<String> = None;
    let mut topology: Vec<String> = Vec::new();
    let mut spawn = "both".to_owned();
    let mut opts = ServeOptions::default();
    let mut json_path = "BENCH_server.json".to_owned();
    let mut fail_on_5xx = false;
    let mut allow_503 = false;
    let mut cfg = LoadConfig {
        conns: 64,
        duration: Duration::from_secs(5),
        pipeline: 1,
        method: "GET".to_owned(),
        endpoint: "/stats".to_owned(),
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse_flag_value(&arg, args.next())),
            "--topology" => {
                let list: String = parse_flag_value(&arg, args.next());
                topology = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if topology.is_empty() {
                    eprintln!("error: --topology needs a comma-separated address list");
                    std::process::exit(2);
                }
            }
            "--spawn" => spawn = parse_flag_value(&arg, args.next()),
            "--conns" => cfg.conns = parse_flag_value(&arg, args.next()),
            "--duration-secs" => {
                cfg.duration = Duration::from_secs(parse_flag_value(&arg, args.next()))
            }
            "--mode" => {
                let mode: String = parse_flag_value(&arg, args.next());
                match mode.as_str() {
                    "closed" => cfg.pipeline = 1,
                    "open" => cfg.pipeline = cfg.pipeline.max(8),
                    _ => {
                        eprintln!("error: --mode must be closed or open");
                        std::process::exit(2);
                    }
                }
            }
            "--pipeline" => cfg.pipeline = parse_flag_value(&arg, args.next()),
            "--endpoint" => cfg.endpoint = parse_flag_value(&arg, args.next()),
            "--method" => cfg.method = parse_flag_value(&arg, args.next()),
            "--listen-threads" => opts.listen_threads = parse_flag_value(&arg, args.next()),
            "--solver-pool" => opts.solver_pool = parse_flag_value(&arg, args.next()),
            "--json" => json_path = parse_flag_value(&arg, args.next()),
            "--fail-on-5xx" => fail_on_5xx = true,
            "--allow-503" => allow_503 = true,
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    cfg.pipeline = cfg.pipeline.max(1);

    if addr.is_some() && !topology.is_empty() {
        eprintln!("error: --addr and --topology are mutually exclusive");
        std::process::exit(2);
    }

    let mut sections: Vec<(String, LoadReport)> = Vec::new();
    // (address, report) per topology target, empty without `--topology`.
    let mut targets: Vec<(String, LoadReport)> = Vec::new();
    if !topology.is_empty() {
        println!(
            "load: {} conns over {} target(s), {:?}, pipeline {} -> {} {}",
            cfg.conns,
            topology.len(),
            cfg.duration,
            cfg.pipeline,
            cfg.method,
            cfg.endpoint
        );
        let (combined, per_target) = run_load_targets(&topology, &cfg);
        sections.push(("combined".to_owned(), combined));
        targets = topology.iter().cloned().zip(per_target).collect();
    }
    match addr {
        _ if !topology.is_empty() => {}
        Some(addr) => {
            println!(
                "load: {} conns, {:?}, pipeline {} -> {addr} {} {}",
                cfg.conns, cfg.duration, cfg.pipeline, cfg.method, cfg.endpoint
            );
            sections.push(("target".to_owned(), run_load(&addr, &cfg)));
        }
        None => {
            if spawn == "reactor" || spawn == "both" {
                let server =
                    Server::spawn_with("127.0.0.1:0", Arc::new(corpus_state()), opts.clone())
                        .expect("spawn reactor server");
                let addr = server.addr().to_string();
                println!(
                    "reactor: {} conns, {:?}, pipeline {} -> {addr}",
                    cfg.conns, cfg.duration, cfg.pipeline
                );
                sections.push(("reactor".to_owned(), run_load(&addr, &cfg)));
                server.shutdown();
            }
            if spawn == "legacy" || spawn == "both" {
                let server = LegacyServer::spawn("127.0.0.1:0", Arc::new(corpus_state()))
                    .expect("spawn legacy server");
                let addr = server.addr().to_string();
                println!("legacy: {} conns, {:?} -> {addr}", cfg.conns, cfg.duration);
                sections.push(("legacy".to_owned(), run_load(&addr, &cfg)));
                server.shutdown();
            }
            if sections.is_empty() {
                eprintln!("error: --spawn must be reactor, legacy, or both");
                std::process::exit(2);
            }
        }
    }

    let mut json = String::from("{");
    json.push_str(&format!(
        concat!(
            "\"config\":{{\"conns\":{},\"duration_secs\":{},\"pipeline\":{},",
            "\"method\":\"{}\",\"endpoint\":\"{}\",\"listen_threads\":{},",
            "\"solver_pool\":{}}}"
        ),
        cfg.conns,
        cfg.duration.as_secs(),
        cfg.pipeline,
        cfg.method,
        cfg.endpoint,
        opts.listen_threads,
        opts.solver_pool,
    ));
    let mut any_5xx = false;
    for (name, report) in &sections {
        println!(
            "{name}: {} requests, {:.1} req/s, p50 {}us p95 {}us p99 {}us max {}us, \
             {} 5xx ({} of them 503), {} reconnects",
            report.requests,
            report.rps(),
            report.quantile_us(0.50),
            report.quantile_us(0.95),
            report.quantile_us(0.99),
            report.latencies_us.last().copied().unwrap_or(0),
            report.server_5xx,
            report.server_503,
            report.reconnects,
        );
        json.push_str(&format!(",\"{name}\":{}", report.to_json()));
        // `--allow-503` tolerates backpressure answers: saturation and
        // shedding experiments assert "503s only, no 500s".
        let hard_5xx = if allow_503 {
            report.server_5xx - report.server_503
        } else {
            report.server_5xx
        };
        any_5xx |= hard_5xx > 0;
    }
    if !targets.is_empty() {
        let mut obj = String::new();
        for (address, report) in &targets {
            println!(
                "  {address}: {} requests, {:.1} req/s, p50 {}us p99 {}us, {} 5xx",
                report.requests,
                report.rps(),
                report.quantile_us(0.50),
                report.quantile_us(0.99),
                report.server_5xx,
            );
            if !obj.is_empty() {
                obj.push(',');
            }
            obj.push_str(&format!("\"{address}\":{}", report.to_json()));
        }
        json.push_str(&format!(",\"targets\":{{{obj}}}"));
    }
    if let (Some(r), Some(l)) = (
        sections.iter().find(|(n, _)| n == "reactor"),
        sections.iter().find(|(n, _)| n == "legacy"),
    ) {
        let speedup = r.1.rps() / l.1.rps().max(1e-9);
        println!("speedup (reactor vs legacy): {speedup:.2}x requests/sec");
        json.push_str(&format!(",\"speedup_rps\":{speedup:.2}"));
    }
    json.push('}');
    std::fs::write(&json_path, format!("{json}\n"))?;
    println!("wrote {json_path}");

    if fail_on_5xx && any_5xx {
        eprintln!("error: server returned 5xx responses under load");
        std::process::exit(1);
    }
    Ok(())
}
