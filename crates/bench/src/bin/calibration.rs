//! Calibration probe for the online behaviour model: per-strategy means of
//! the instrumented quantities (boredom at completion, display diversity,
//! per-question accuracy, inter-completion pacing), next to the three KPIs.
//! Use this when re-tuning `BehaviorConfig` (see EXPERIMENTS.md).

use hta_bench::Scale;
use hta_crowd::{experiment, OnlineConfig, PopulationConfig};
use hta_datagen::crowdflower::CrowdflowerConfig;

fn main() {
    let scale = Scale::from_env();
    let sessions = std::env::var("HTA_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale.fig5_sessions());
    let cfg = OnlineConfig {
        sessions_per_strategy: sessions,
        catalog: CrowdflowerConfig {
            n_tasks: scale.fig5_catalog(),
            ..Default::default()
        },
        population: PopulationConfig::default(),
        ..Default::default()
    };
    let results = experiment::run(&cfg);

    println!(
        "{:<13} {:>8} {:>8} {:>7} {:>9} {:>10} {:>9} {:>9} {:>10}",
        "strategy",
        "boredom",
        "dispdiv",
        "match",
        "%correct",
        "tasks/sess",
        "mean-min",
        "min/task",
        "%>18.2min"
    );
    for r in &results.per_strategy {
        let mut boredom = 0.0;
        let mut dd = 0.0;
        let mut pm = 0.0;
        let mut n = 0usize;
        let mut gaps = Vec::new();
        for rec in &r.records {
            let mut prev = 0.0;
            for c in &rec.completions {
                boredom += c.boredom;
                dd += c.display_diversity;
                pm += c.pref_match;
                n += 1;
                gaps.push(c.minute - prev);
                prev = c.minute;
            }
        }
        let nf = n.max(1) as f64;
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        println!(
            "{:<13} {:>8.3} {:>8.3} {:>7.3} {:>9.1} {:>10.1} {:>9.1} {:>9.2} {:>10.0}",
            r.strategy.name(),
            boredom / nf,
            dd / nf,
            pm / nf,
            r.summary.percent_correct,
            r.summary.completed_per_session,
            r.summary.mean_session_minutes,
            mean_gap,
            r.summary.retention_at_probe,
        );
    }
    println!("\nPaper targets: Div 81.9% / Gre 75.5% / Rel 65.0% quality;");
    println!("Gre 734 > Rel 666 > Div 636 completed; Gre 36.7 tasks/session over 22.3 min;");
    println!("Gre retention best (85% of sessions > 18.2 min).");
}
