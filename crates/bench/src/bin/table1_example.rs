//! **Table I + Examples 1–3** — the paper's worked example: 2 workers,
//! 8 tasks, `X_max = 3`, the relevance matrix of Table I, the A/C matrices
//! of Figure 1, and an HTA-APP/HTA-GRE run over the instance.

use hta_core::prelude::*;
use hta_core::qap::{build_dense_a, build_dense_b, build_dense_c, paper_example};
use hta_matching::CostMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_matrix(title: &str, m: &hta_matching::DenseMatrix) {
    println!("{title}:");
    for r in 0..m.n() {
        let row: Vec<String> = (0..m.n()).map(|c| format!("{:5.2}", m.get(r, c))).collect();
        println!("  [{}]", row.join(" "));
    }
}

fn main() {
    let inst = paper_example();
    println!("Paper running example (Table I / Figure 1 / Examples 1-3)");
    println!(
        "  |T| = {}, |W| = {}, X_max = {}",
        inst.n_tasks(),
        inst.n_workers(),
        inst.xmax()
    );
    println!(
        "  w1: alpha = {:.1}, beta = {:.1};  w2: alpha = {:.1}, beta = {:.1} (verbatim from the paper)",
        inst.alpha(0),
        inst.beta(0),
        inst.alpha(1),
        inst.beta(1)
    );

    println!("\nTable I — rel(t, w):");
    for q in 0..inst.n_workers() {
        let row: Vec<String> = (0..inst.n_tasks())
            .map(|t| format!("{:4.2}", inst.rel(q, t)))
            .collect();
        println!("  w{}: [{}]", q + 1, row.join(" "));
    }

    println!();
    print_matrix("Matrix A (Eq. 4, Figure 1 left)", &build_dense_a(&inst));
    println!();
    print_matrix("Matrix C (Eq. 6, Figure 1 right)", &build_dense_c(&inst));
    println!(
        "\n  check: c[1][1] = (X_max-1) * beta_w1 * rel(w1, t1) = 2 x 0.8 x 0.28 = {:.3}",
        build_dense_c(&inst).get(0, 0)
    );
    println!();
    print_matrix(
        "Matrix B (Eq. 5) — pairwise diversities",
        &build_dense_b(&inst),
    );

    for (name, solver) in [
        ("HTA-APP", Box::new(HtaApp::new()) as Box<dyn Solver>),
        ("HTA-GRE", Box::new(HtaGre::new())),
    ] {
        let mut rng = StdRng::seed_from_u64(42);
        let out = solver.solve(&inst, &mut rng);
        println!("\n{name} (seed 42):");
        for q in 0..inst.n_workers() {
            let mut tasks: Vec<usize> = out.assignment.tasks_of(q).to_vec();
            tasks.sort_unstable();
            let names: Vec<String> = tasks.iter().map(|t| format!("t{}", t + 1)).collect();
            println!("  w{} <- {{{}}}", q + 1, names.join(", "));
        }
        let unassigned: Vec<String> = out
            .assignment
            .unassigned(&inst)
            .iter()
            .map(|t| format!("t{}", t + 1))
            .collect();
        println!("  unassigned: {{{}}}", unassigned.join(", "));
        println!(
            "  objective (Eq. 3) = {:.4}, auxiliary LSAP value = {:.4}",
            out.assignment.objective(&inst),
            out.lsap_value
        );
    }
}
