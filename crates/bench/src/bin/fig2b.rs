//! **Figure 2b** — objective-function value vs. number of tasks.
//!
//! The paper's finding: HTA-APP and HTA-GRE report *very similar* objective
//! values despite the ¼ vs ⅛ worst-case gap, which is what justifies
//! deploying the faster HTA-GRE. This harness reports both the Eq. 3
//! objective of the final assignment and the auxiliary LSAP value.

use hta_bench::{build_instance, write_csv, Row, Scale, SweepCheckpoint, Table};
use hta_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let spec = scale.fig2_tasks();
    let runs = scale.runs();
    println!(
        "Figure 2b (scale={scale}): objective value vs |T|; |W|={}, Xmax={}, {} groups",
        spec.n_workers, spec.xmax, spec.n_groups
    );

    let mut table = Table::new(
        "Fig 2b — objective function value vs number of tasks",
        "|T|",
    );
    let mut ckpt = SweepCheckpoint::open("fig2b", &format!("{scale}:{runs}:{spec:?}"));
    if ckpt.restored() > 0 {
        println!(
            "  resuming: {} point(s) restored from checkpoint",
            ckpt.restored()
        );
    }
    ckpt.replay(&mut table);
    for &n_tasks in &spec.sweep {
        if ckpt.is_done(&n_tasks.to_string()) {
            continue;
        }
        let inst = build_instance(n_tasks, spec.n_groups, spec.n_workers, spec.xmax, 0xF26B);
        let mut objective = [0.0f64; 2];
        let mut ratio_min = f64::INFINITY;
        for run in 0..runs {
            let mut rng_a = StdRng::seed_from_u64(run as u64);
            let mut rng_g = StdRng::seed_from_u64(run as u64);
            let app = HtaApp::new().solve(&inst, &mut rng_a);
            let gre = HtaGre::new().solve(&inst, &mut rng_g);
            let oa = app.assignment.objective(&inst);
            let og = gre.assignment.objective(&inst);
            objective[0] += oa;
            objective[1] += og;
            if oa > 0.0 {
                ratio_min = ratio_min.min(og / oa);
            }
        }
        let r = runs as f64;
        let row = Row::new(
            n_tasks.to_string(),
            vec![
                ("hta-app", objective[0] / r),
                ("hta-gre", objective[1] / r),
                (
                    "gre/app-worst",
                    if ratio_min.is_finite() {
                        ratio_min
                    } else {
                        1.0
                    },
                ),
            ],
        );
        table.push(row.clone());
        ckpt.record(row);
        println!("  |T|={n_tasks} done");
    }
    print!("{}", table.render());
    match write_csv("fig2b", &table) {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    ckpt.finish();
}
