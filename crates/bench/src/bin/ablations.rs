//! **Ablations** — the design-choice studies listed in DESIGN.md §3:
//!
//! 1. structured (column-class) vs dense LSAP cost representation;
//! 2. exact-JV vs greedy vs auction vs structured-exact LSAP solvers;
//! 3. the random ½-flip of matched pairs (Alg. 1 lines 12–16) on/off;
//! 4. HTA-APP/HTA-GRE vs the baselines (random, greedy-relevance,
//!    greedy-motivation) on objective value.

use hta_bench::{build_instance, write_csv, Row, Scale, Table};
use hta_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_objective(inst: &Instance, solver: &dyn Solver, runs: usize) -> (f64, f64) {
    let mut obj = 0.0;
    let mut secs = 0.0;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(run as u64);
        let out = solver.solve(inst, &mut rng);
        obj += out.assignment.objective(inst);
        secs += out.timings.total.as_secs_f64();
    }
    (obj / runs as f64, secs / runs as f64)
}

fn main() {
    let scale = Scale::from_env();
    let (n_tasks, n_groups, n_workers, xmax) = match scale {
        Scale::Tiny => (300, 30, 8, 5),
        Scale::Laptop => (2000, 200, 100, 10),
        Scale::Paper => (8000, 200, 200, 20),
    };
    let runs = scale.runs();
    let inst = build_instance(n_tasks, n_groups, n_workers, xmax, 0xAB);
    println!(
        "Ablations (scale={scale}): |T|={n_tasks}, |W|={n_workers}, Xmax={xmax}, {n_groups} groups"
    );

    // ---- 1 & 2: representation and LSAP solver ---------------------------
    let mut t1 = Table::new("Ablation — LSAP solver / cost representation", "variant");
    let variants: Vec<(&str, Box<dyn Solver>)> = vec![
        ("app dense+jv (paper)", Box::new(HtaApp::new())),
        ("app classed+structured", Box::new(HtaApp::structured())),
        (
            "app dense+auction",
            Box::new(HtaApp::new().with_auction_lsap()),
        ),
        ("gre dense (paper)", Box::new(HtaGre::new())),
        ("gre classed", Box::new(HtaGre::structured())),
    ];
    for (name, solver) in &variants {
        let (obj, secs) = mean_objective(&inst, solver.as_ref(), runs);
        t1.push(Row::new(*name, vec![("objective", obj), ("seconds", secs)]));
        println!("  {name} done");
    }
    print!("{}", t1.render());
    let _ = write_csv("ablation_lsap", &t1);

    // ---- 3: random flip on/off -------------------------------------------
    let mut t2 = Table::new("Ablation — random flip of matched pairs", "variant");
    let flips: Vec<(&str, Box<dyn Solver>)> = vec![
        ("app flip on", Box::new(HtaApp::new())),
        ("app flip off", Box::new(HtaApp::new().without_flip())),
        ("gre flip on", Box::new(HtaGre::new())),
        ("gre flip off", Box::new(HtaGre::new().without_flip())),
    ];
    for (name, solver) in &flips {
        let (obj, _) = mean_objective(&inst, solver.as_ref(), runs);
        t2.push(Row::new(*name, vec![("objective", obj)]));
    }
    print!("{}", t2.render());
    let _ = write_csv("ablation_flip", &t2);

    // ---- 4: versus baselines -----------------------------------------------
    let mut t3 = Table::new("Ablation — versus baselines (objective)", "solver");
    let baselines: Vec<(&str, Box<dyn Solver>)> = vec![
        ("hta-app", Box::new(HtaApp::new())),
        ("hta-gre", Box::new(HtaGre::new())),
        (
            "hta-gre+local-search",
            Box::new(LocalSearch::new(HtaGre::new(), 3)),
        ),
        ("greedy-motivation", Box::new(GreedyMotivation)),
        ("greedy-relevance", Box::new(GreedyRelevance)),
        ("random", Box::new(RandomAssign)),
    ];
    for (name, solver) in &baselines {
        let (obj, secs) = mean_objective(&inst, solver.as_ref(), runs);
        t3.push(Row::new(*name, vec![("objective", obj), ("seconds", secs)]));
        println!("  {name} done");
    }
    print!("{}", t3.render());
    let _ = write_csv("ablation_baselines", &t3);
}
