//! Experiment scale selection (`HTA_SCALE` = `tiny` | `laptop` | `paper`).

use std::fmt;

/// The scale at which figure harnesses run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// CI smoke: seconds per figure.
    Tiny,
    /// Single-core laptop: minutes per figure, same curve shapes (default).
    #[default]
    Laptop,
    /// The paper's exact sweep parameters (hours; needs ≥ 8 GB free RAM).
    Paper,
}

impl Scale {
    /// Read the scale from `HTA_SCALE` (defaults to `laptop`).
    ///
    /// # Panics
    /// Panics on an unrecognized value, listing the accepted ones.
    pub fn from_env() -> Self {
        match std::env::var("HTA_SCALE").as_deref() {
            Err(_) => Self::Laptop,
            Ok("tiny") => Self::Tiny,
            Ok("laptop") => Self::Laptop,
            Ok("paper") => Self::Paper,
            Ok(other) => panic!("HTA_SCALE must be tiny|laptop|paper, got '{other}'"),
        }
    }

    /// Number of repetitions averaged per data point (the paper averages
    /// ten runs).
    pub fn runs(&self) -> usize {
        match self {
            Self::Tiny => 1,
            Self::Laptop => 3,
            Self::Paper => 10,
        }
    }

    /// Fig. 2a/2b task-count sweep. Paper: 4,000–10,000 step 1,000 with
    /// `|W| = 200`, `X_max = 20`, 200 task groups.
    pub fn fig2_tasks(&self) -> SweepSpec {
        match self {
            Self::Tiny => SweepSpec {
                sweep: vec![200, 400],
                n_workers: 8,
                xmax: 5,
                n_groups: 20,
            },
            Self::Laptop => SweepSpec {
                sweep: vec![1000, 1500, 2000, 2500, 3000],
                n_workers: 100,
                xmax: 10,
                n_groups: 200,
            },
            Self::Paper => SweepSpec {
                sweep: vec![4000, 5000, 6000, 7000, 8000, 9000, 10000],
                n_workers: 200,
                xmax: 20,
                n_groups: 200,
            },
        }
    }

    /// Fig. 2c worker-count sweep. Paper: 30–350 with `|T| = 8,000`.
    pub fn fig2c_workers(&self) -> SweepSpec {
        match self {
            Self::Tiny => SweepSpec {
                sweep: vec![4, 8],
                n_workers: 0, // swept
                xmax: 5,
                n_groups: 20,
            },
            Self::Laptop => SweepSpec {
                sweep: vec![30, 70, 110, 150, 190],
                n_workers: 0,
                xmax: 10,
                n_groups: 200,
            },
            Self::Paper => SweepSpec {
                sweep: vec![30, 70, 110, 150, 200, 250, 300, 350],
                n_workers: 0,
                xmax: 20,
                n_groups: 200,
            },
        }
    }

    /// Fixed task count for Fig. 2c. Paper: 8,000.
    pub fn fig2c_tasks(&self) -> usize {
        match self {
            Self::Tiny => 300,
            Self::Laptop => 2000,
            Self::Paper => 8000,
        }
    }

    /// Fig. 3 group-count sweep. Paper: 10–10,000 groups at `|T| = 10,000`,
    /// `|W| = 300`, `X_max = 20` (the caption prints |T| = 10³; we follow
    /// the body text — see DESIGN.md).
    pub fn fig3_groups(&self) -> Vec<usize> {
        match self {
            Self::Tiny => vec![2, 30, 300],
            Self::Laptop => vec![10, 100, 1000, 2000],
            Self::Paper => vec![10, 100, 1000, 10000],
        }
    }

    /// Fixed task count for Fig. 3.
    pub fn fig3_tasks(&self) -> usize {
        match self {
            Self::Tiny => 300,
            Self::Laptop => 2000,
            Self::Paper => 10000,
        }
    }

    /// Fixed worker count for Fig. 3. Paper: 300.
    pub fn fig3_workers(&self) -> usize {
        match self {
            Self::Tiny => 8,
            Self::Laptop => 100,
            Self::Paper => 300,
        }
    }

    /// Fig. 5 sessions per strategy. Paper: 20.
    pub fn fig5_sessions(&self) -> usize {
        match self {
            Self::Tiny => 4,
            Self::Laptop | Self::Paper => 20,
        }
    }

    /// Fig. 5 catalog size (the paper's pool has 158k tasks; sessions only
    /// ever touch a few thousand).
    pub fn fig5_catalog(&self) -> usize {
        match self {
            Self::Tiny => 800,
            Self::Laptop => 6000,
            Self::Paper => 20000,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Tiny => "tiny",
            Self::Laptop => "laptop",
            Self::Paper => "paper",
        };
        write!(f, "{s}")
    }
}

/// A sweep: the varying values plus the fixed instance shape.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The swept parameter values (tasks for 2a/2b, workers for 2c).
    pub sweep: Vec<usize>,
    /// Fixed worker count (0 when workers are the swept parameter).
    pub n_workers: usize,
    /// Per-worker capacity `X_max`.
    pub xmax: usize,
    /// Number of AMT-like task groups.
    pub n_groups: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_laptop() {
        // The test environment does not set HTA_SCALE.
        if std::env::var("HTA_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Laptop);
        }
    }

    #[test]
    fn paper_scale_matches_paper_parameters() {
        let p = Scale::Paper.fig2_tasks();
        assert_eq!(p.sweep.first(), Some(&4000));
        assert_eq!(p.sweep.last(), Some(&10000));
        assert_eq!(p.n_workers, 200);
        assert_eq!(p.xmax, 20);
        assert_eq!(p.n_groups, 200);
        assert_eq!(Scale::Paper.fig2c_tasks(), 8000);
        assert_eq!(Scale::Paper.fig3_workers(), 300);
        assert_eq!(Scale::Paper.runs(), 10);
        assert_eq!(Scale::Paper.fig5_sessions(), 20);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.fig2c_tasks() < Scale::Laptop.fig2c_tasks());
        assert!(Scale::Laptop.fig2c_tasks() < Scale::Paper.fig2c_tasks());
    }

    #[test]
    fn display_names() {
        assert_eq!(Scale::Tiny.to_string(), "tiny");
        assert_eq!(Scale::Laptop.to_string(), "laptop");
        assert_eq!(Scale::Paper.to_string(), "paper");
    }
}
