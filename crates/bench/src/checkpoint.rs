//! Resumable figure sweeps: completed data points are checkpointed to an
//! [`hta_snapshot`] container after every sweep iteration, so an
//! interrupted `HTA_SCALE=paper` run (hours per figure) restarts
//! mid-figure instead of from scratch.
//!
//! A checkpoint is scoped by a *fingerprint* — the scale plus the sweep's
//! instance shape — so changing `HTA_SCALE` (or the sweep parameters)
//! silently discards a stale file rather than splicing rows from a
//! different experiment. Completed figures delete their checkpoint; the
//! file only survives a crash or an interrupt.

use std::path::{Path, PathBuf};

use hta_core::state::{decode, encode, StateDecodeError, StateReader, StateSerialize};
use hta_snapshot::{Snapshot, SnapshotBuilder};

use crate::harness::{csv_path, Row, Table};

/// `kind` string of figure-sweep checkpoints (distinct from the server's
/// `"hta-server-state"` and the runner's `"hta-crowd-run"`).
pub const SNAPSHOT_KIND: &str = "hta-figure-sweep";

const SECTION_FINGERPRINT: &str = "fingerprint";
const SECTION_ROWS: &str = "rows";

impl StateSerialize for Row {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.label.write_state(out);
        self.cells.len().write_state(out);
        for (k, v) in &self.cells {
            k.write_state(out);
            v.write_state(out);
        }
    }

    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let label = String::read_state(r)?;
        let n = usize::read_state(r)?;
        let mut cells = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = String::read_state(r)?;
            let v = f64::read_state(r)?;
            cells.push((k, v));
        }
        Ok(Self { label, cells })
    }
}

/// A figure sweep's restart state: the rows completed so far, persisted
/// atomically after each data point.
///
/// ```no_run
/// # use hta_bench::{Row, SweepCheckpoint, Table};
/// let mut table = Table::new("Fig X", "|T|");
/// let mut ckpt = SweepCheckpoint::open("figX", "laptop:whatever");
/// ckpt.replay(&mut table);
/// for n in [1000usize, 2000, 4000] {
///     if ckpt.is_done(&n.to_string()) {
///         continue; // restored from a previous interrupted run
///     }
///     let row = Row::new(n.to_string(), vec![("total", 0.0)]);
///     table.push(row.clone());
///     ckpt.record(row);
/// }
/// ckpt.finish();
/// ```
pub struct SweepCheckpoint {
    path: PathBuf,
    fingerprint: String,
    rows: Vec<Row>,
    restored: usize,
}

impl SweepCheckpoint {
    /// Open the checkpoint for figure `name`, scoped by `fingerprint`.
    /// An existing file with the same kind and fingerprint restores its
    /// completed rows; anything else (absent, corrupt, truncated, or from
    /// a different scale/sweep) starts fresh.
    pub fn open(name: &str, fingerprint: &str) -> Self {
        let mut path = csv_path(name);
        path.set_extension("sweep.htasnap");
        let rows = Self::try_restore(&path, fingerprint).unwrap_or_default();
        let restored = rows.len();
        Self {
            path,
            fingerprint: fingerprint.to_owned(),
            rows,
            restored,
        }
    }

    fn try_restore(path: &Path, fingerprint: &str) -> Option<Vec<Row>> {
        let snap = Snapshot::load(path).ok()?;
        if snap.kind() != SNAPSHOT_KIND {
            return None;
        }
        let stored: String = decode(snap.section(SECTION_FINGERPRINT).ok()?).ok()?;
        if stored != fingerprint {
            return None;
        }
        decode(snap.section(SECTION_ROWS).ok()?).ok()
    }

    /// Number of rows restored from a previous interrupted run.
    pub fn restored(&self) -> usize {
        self.restored
    }

    /// Whether the data point labeled `label` is already complete.
    pub fn is_done(&self, label: &str) -> bool {
        self.rows.iter().any(|r| r.label == label)
    }

    /// Push every restored row into `table` (call once, before the sweep
    /// loop, so the final table contains restored and fresh rows in sweep
    /// order — provided the sweep order itself is unchanged, which the
    /// fingerprint guarantees).
    pub fn replay(&self, table: &mut Table) {
        for r in &self.rows {
            table.push(r.clone());
        }
    }

    /// Record a freshly completed data point and persist the checkpoint
    /// atomically (write-to-temp, fsync, rename). A failed write is
    /// reported but non-fatal: the sweep keeps going, it just cannot
    /// resume past this point.
    pub fn record(&mut self, row: Row) {
        self.rows.push(row);
        let builder = SnapshotBuilder::new(SNAPSHOT_KIND)
            .section(SECTION_FINGERPRINT, encode(&self.fingerprint))
            .section(SECTION_ROWS, encode(&self.rows));
        if let Some(dir) = self.path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = builder.write_atomic(&self.path) {
            eprintln!(
                "warning: sweep checkpoint write failed ({e}); run cannot resume from {}",
                self.path.display()
            );
        }
    }

    /// The sweep completed: delete the checkpoint so the next run starts
    /// from the beginning.
    pub fn finish(self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_name(tag: &str) -> String {
        format!("ckpt-test-{tag}-{}", std::process::id())
    }

    #[test]
    fn row_round_trips() {
        let row = Row::new("4000", vec![("app-total", 1.25), ("gre-total", 0.5)]);
        let back: Row = decode(&encode(&row)).unwrap();
        assert_eq!(back.label, row.label);
        assert_eq!(back.cells, row.cells);
    }

    #[test]
    fn interrupted_sweep_resumes_only_matching_fingerprint() {
        let name = unique_name("resume");
        let mut ckpt = SweepCheckpoint::open(&name, "laptop:v1");
        assert_eq!(ckpt.restored(), 0);
        ckpt.record(Row::new("1000", vec![("total", 1.0)]));
        ckpt.record(Row::new("2000", vec![("total", 2.0)]));

        // Same fingerprint: both points restore, in order.
        let again = SweepCheckpoint::open(&name, "laptop:v1");
        assert_eq!(again.restored(), 2);
        assert!(again.is_done("1000") && again.is_done("2000"));
        assert!(!again.is_done("4000"));
        let mut table = Table::new("t", "|T|");
        again.replay(&mut table);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].label, "1000");

        // Different fingerprint (scale or sweep changed): discarded.
        let other = SweepCheckpoint::open(&name, "paper:v1");
        assert_eq!(other.restored(), 0);

        again.finish();
        let gone = SweepCheckpoint::open(&name, "laptop:v1");
        assert_eq!(gone.restored(), 0, "finish() removes the checkpoint");
    }

    #[test]
    fn corrupt_checkpoint_starts_fresh() {
        let name = unique_name("corrupt");
        let mut ckpt = SweepCheckpoint::open(&name, "fp");
        ckpt.record(Row::new("10", vec![("x", 0.5)]));
        let path = ckpt.path.clone();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let back = SweepCheckpoint::open(&name, "fp");
        assert_eq!(back.restored(), 0);
        back.finish();
    }
}
