//! # hta-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the
//! experiment index), plus Criterion micro-benchmarks. This library holds
//! the shared harness plumbing: scale selection, instance construction from
//! generated workloads, timing, and CSV/table output.
//!
//! ## Scales
//!
//! The paper ran on 2×10-core Xeons with 128 GB RAM; the default `laptop`
//! scale shrinks the sweeps so every figure regenerates in minutes on one
//! core while preserving the curve *shapes*. Select with the `HTA_SCALE`
//! environment variable: `tiny` (CI smoke), `laptop` (default), `paper`
//! (the exact parameters of the paper).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod harness;
pub mod scale;

pub use checkpoint::SweepCheckpoint;
pub use harness::{
    build_instance, build_pools, csv_path, instance_from_pools, time_it, write_csv, Row, Table,
};
pub use scale::{Scale, SweepSpec};
