//! Shared harness plumbing: instance construction, timing, CSV emission,
//! and paper-style table printing.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use hta_core::{Instance, Task, TaskId, TaskPool, Worker, WorkerId, WorkerPool};
use hta_datagen::amt::{generate_exact, AmtConfig};
use hta_datagen::workers::{synthetic_workers, SyntheticWorkerConfig};

/// Build the offline-simulation instance of Section V-B: `n_tasks` real
/// AMT-like tasks over `n_groups` groups, `n_workers` synthetic workers
/// with five uniform keywords and random `(α, β)`.
pub fn build_instance(
    n_tasks: usize,
    n_groups: usize,
    n_workers: usize,
    xmax: usize,
    seed: u64,
) -> Instance {
    let (tasks, workers) = build_pools(n_tasks, n_groups, n_workers, seed);
    Instance::new(tasks, workers, xmax).expect("generated instances are well-formed")
}

/// The catalog + worker pool behind [`build_instance`], un-frozen — for
/// callers that repeatedly re-instance subsets of one fixed catalog (the
/// warm-start churn sweep solves a fresh open subset each round).
pub fn build_pools(
    n_tasks: usize,
    n_groups: usize,
    n_workers: usize,
    seed: u64,
) -> (Vec<Task>, Vec<Worker>) {
    let amt = generate_exact(
        &AmtConfig {
            seed,
            ..AmtConfig::with_totals(n_tasks, n_groups)
        },
        n_tasks,
    );
    let workers = synthetic_workers(
        amt.space.len(),
        &SyntheticWorkerConfig {
            n_workers,
            seed: seed ^ 0x77,
            ..Default::default()
        },
    );
    let ts: Vec<Task> = amt
        .tasks
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| Task::new(TaskId(i as u32), t.group, t.keywords.clone()))
        .collect();
    let ws: Vec<Worker> = workers
        .workers()
        .iter()
        .enumerate()
        .map(|(i, w)| Worker::new(WorkerId(i as u32), w.keywords.clone()).with_weights(w.weights))
        .collect();
    (ts, ws)
}

/// Freeze a [`TaskPool`] + [`WorkerPool`] into an [`Instance`].
pub fn instance_from_pools(tasks: &TaskPool, workers: &WorkerPool, xmax: usize) -> Instance {
    let ts: Vec<Task> = tasks
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| Task::new(TaskId(i as u32), t.group, t.keywords.clone()))
        .collect();
    let ws: Vec<Worker> = workers
        .workers()
        .iter()
        .enumerate()
        .map(|(i, w)| Worker::new(WorkerId(i as u32), w.keywords.clone()).with_weights(w.weights))
        .collect();
    Instance::new(ts, ws, xmax).expect("generated instances are well-formed")
}

/// Run `f` and return its result with the wall-clock duration.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// One output row: a label plus named numeric cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (the swept parameter value).
    pub label: String,
    /// Named numeric cells, in column order.
    pub cells: Vec<(String, f64)>,
}

impl Row {
    /// Build a row from a label and `(column, value)` pairs.
    pub fn new(label: impl Into<String>, cells: Vec<(&str, f64)>) -> Self {
        Self {
            label: label.into(),
            cells: cells.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        }
    }
}

/// A printable/serializable results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Header of the label column.
    pub label_header: String,
    /// Data rows; all rows must share the same cell columns.
    pub rows: Vec<Row>,
}

impl Table {
    /// Start an empty table.
    pub fn new(title: impl Into<String>, label_header: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            label_header: label_header.into(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Render as an aligned text table (paper-style).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        if self.rows.is_empty() {
            out.push_str("(no rows)\n");
            return out;
        }
        let headers: Vec<&str> = self.rows[0].cells.iter().map(|(k, _)| k.as_str()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len().max(10)).collect();
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0)
            .max(self.label_header.len());
        for row in &self.rows {
            for (i, (_, v)) in row.cells.iter().enumerate() {
                widths[i] = widths[i].max(format!("{v:.3}").len());
            }
        }
        out.push_str(&format!("{:<label_w$}", self.label_header));
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!("  {h:>w$}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<label_w$}", row.label));
            for ((_, v), w) in row.cells.iter().zip(&widths) {
                out.push_str(&format!("  {:>w$.3}", v));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if self.rows.is_empty() {
            return out;
        }
        out.push_str(&self.label_header.replace(',', ";"));
        for (k, _) in &self.rows[0].cells {
            out.push(',');
            out.push_str(&k.replace(',', ";"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.label.replace(',', ";"));
            for (_, v) in &row.cells {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Where figure CSVs land: `target/figures/<name>.csv`.
pub fn csv_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("target");
    p.push("figures");
    p.push(format!("{name}.csv"));
    p
}

/// Write a table to `target/figures/<name>.csv`, creating directories.
pub fn write_csv(name: &str, table: &Table) -> std::io::Result<PathBuf> {
    let path = csv_path(name);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_instance_has_requested_shape() {
        let inst = build_instance(60, 6, 3, 5, 42);
        assert_eq!(inst.n_tasks(), 60);
        assert_eq!(inst.n_workers(), 3);
        assert_eq!(inst.xmax(), 5);
        // Relevance precomputed and in range.
        for q in 0..3 {
            for t in 0..60 {
                let r = inst.rel(q, t);
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn time_it_measures_something() {
        let (v, d) = time_it(|| {
            let mut s = 0u64;
            for i in 0..100_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(v > 0);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn table_render_and_csv() {
        let mut t = Table::new("Demo", "|T|");
        t.push(Row::new("1000", vec![("hta-app", 1.5), ("hta-gre", 0.5)]));
        t.push(Row::new("2000", vec![("hta-app", 6.0), ("hta-gre", 2.0)]));
        let text = t.render();
        assert!(text.contains("Demo"));
        assert!(text.contains("hta-app"));
        assert!(text.contains("1000"));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("|T|,hta-app,hta-gre"));
        assert_eq!(lines.next(), Some("1000,1.5,0.5"));
    }

    #[test]
    fn empty_table_is_harmless() {
        let t = Table::new("Empty", "x");
        assert!(t.render().contains("no rows"));
        assert_eq!(t.to_csv(), "");
    }

    #[test]
    fn csv_path_is_under_target_figures() {
        let p = csv_path("fig2a");
        let s = p.to_string_lossy();
        assert!(s.ends_with("target/figures/fig2a.csv"));
    }
}
