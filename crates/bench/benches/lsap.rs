//! Criterion micro-benchmarks for the LSAP solvers (the inner loop of
//! HTA-APP/HTA-GRE) across dense random, degenerate, and HTA-shaped
//! (column-class) profit matrices.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hta_matching::lsap::{auction, greedy, jv, structured};
use hta_matching::{ClassedCosts, DenseMatrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_dense(n: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(n, |_, _| rng.random::<f64>())
}

/// HTA-shaped: n columns over (w+1) classes, zero class wide.
fn hta_shaped(n: usize, workers: usize, xmax: usize, seed: u64) -> ClassedCosts {
    let mut rng = StdRng::seed_from_u64(seed);
    let nc = workers + 1;
    let classes: Vec<u32> = (0..n)
        .map(|l| {
            let q = l / xmax;
            if q < workers {
                q as u32
            } else {
                workers as u32
            }
        })
        .collect();
    let profits: Vec<f64> = (0..n * nc).map(|_| rng.random::<f64>()).collect();
    ClassedCosts::new(n, nc, classes, |r, c| {
        if c == workers {
            0.0
        } else {
            profits[r * nc + c]
        }
    })
}

fn bench_lsap_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsap/dense-random");
    group.sample_size(10);
    for &n in &[100usize, 300, 600] {
        let m = random_dense(n, 42);
        group.bench_with_input(BenchmarkId::new("jv", n), &m, |b, m| {
            b.iter(|| black_box(jv::solve(m).value))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &m, |b, m| {
            b.iter(|| black_box(greedy::solve(m).value))
        });
        group.bench_with_input(BenchmarkId::new("auction", n), &m, |b, m| {
            b.iter(|| black_box(auction::solve(m).value))
        });
    }
    group.finish();
}

fn bench_lsap_degenerate(c: &mut Criterion) {
    // All-equal profits: the regime where JV terminates in its reduction
    // phases (the paper's Fig. 3 analysis at few task groups).
    let mut group = c.benchmark_group("lsap/degenerate");
    group.sample_size(10);
    for &n in &[300usize, 600] {
        let m = DenseMatrix::from_fn(n, |_, _| 0.5);
        group.bench_with_input(BenchmarkId::new("jv", n), &m, |b, m| {
            b.iter(|| black_box(jv::solve(m).value))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &m, |b, m| {
            b.iter(|| black_box(greedy::solve(m).value))
        });
    }
    group.finish();
}

fn bench_lsap_structured(c: &mut Criterion) {
    // Ablation 1 (DESIGN.md): structured vs dense on HTA-shaped costs.
    let mut group = c.benchmark_group("lsap/hta-shaped");
    group.sample_size(10);
    for &n in &[300usize, 600] {
        let cc = hta_shaped(n, 10, 10, 7);
        let dense = DenseMatrix::from_fn(n, |r, col| {
            use hta_matching::CostMatrix;
            cc.cost(r, col)
        });
        group.bench_with_input(BenchmarkId::new("jv-dense", n), &dense, |b, m| {
            b.iter(|| black_box(jv::solve(m).value))
        });
        group.bench_with_input(BenchmarkId::new("structured-exact", n), &cc, |b, m| {
            b.iter(|| black_box(structured::solve(m).value))
        });
        group.bench_with_input(BenchmarkId::new("greedy-classed", n), &cc, |b, m| {
            b.iter(|| black_box(greedy::solve(m).value))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lsap_dense,
    bench_lsap_degenerate,
    bench_lsap_structured
);
criterion_main!(benches);
