//! Criterion micro-benchmarks of the SIMD similarity kernels: batched
//! one-vs-many Jaccard over a packed catalog (scalar vs the detected SIMD
//! backend) and the end-to-end diversity edge enumeration they feed.
//!
//! Besides the criterion output, the run emits `BENCH_kernels.json` at the
//! repo root: per-size one-vs-many throughput for every available backend
//! (with the speedup over scalar) plus the 4k-task edge-enumeration
//! wall-clock, so the kernel perf trajectory stays machine-readable across
//! PRs. The emitter double-checks scalar vs SIMD bit-identity on its
//! inputs and aborts loudly on any mismatch — running the bench is also a
//! parity smoke test.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use hta_bench::build_pools;
use hta_core::kernels::{
    active_mode, jaccard_one_vs_many_with_mode, mode_available, PackedCatalog, SimdMode,
};
use hta_core::{DiversityEdgeCache, Jaccard, KeywordVec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Keyword universe for the synthetic catalogs: deliberately not a
/// multiple of 64 so every row has a ragged tail block.
const NBITS: usize = 300;

/// Catalog sizes for one-vs-many: 1k/100k always, 1M behind
/// `HTA_BENCH_LARGE` (a 1M-row catalog packs ~64 MB).
fn catalog_sizes() -> Vec<usize> {
    let mut sizes = vec![1_000usize, 100_000];
    if std::env::var("HTA_BENCH_LARGE").is_ok() {
        sizes.push(1_000_000);
    } else {
        println!("kernels/one-vs-many: set HTA_BENCH_LARGE=1 for the 1M point");
    }
    sizes
}

/// The backends this machine can run, scalar first.
fn modes() -> Vec<SimdMode> {
    [SimdMode::Scalar, SimdMode::Avx2, SimdMode::Neon]
        .into_iter()
        .filter(|&m| mode_available(m))
        .collect()
}

fn random_catalog(n: usize, seed: u64) -> (PackedCatalog, KeywordVec) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = PackedCatalog::new(NBITS);
    let mut row = KeywordVec::new(NBITS);
    for _ in 0..n {
        row = KeywordVec::new(NBITS);
        // ~8 keywords per task, the AMT-like density.
        for _ in 0..8 {
            row.set(rng.random_range(0..NBITS as u32) as usize);
        }
        cat.push(&row);
    }
    let _ = row;
    let mut query = KeywordVec::new(NBITS);
    for _ in 0..8 {
        query.set(rng.random_range(0..NBITS as u32) as usize);
    }
    (cat, query)
}

fn bench_one_vs_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/one-vs-many");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for &n in &catalog_sizes() {
        let (cat, query) = random_catalog(n, 0x5144);
        let mut out = vec![0.0f64; n];
        for &mode in &modes() {
            group.bench_with_input(BenchmarkId::new(mode.name(), n), &cat, |b, cat| {
                b.iter(|| {
                    jaccard_one_vs_many_with_mode(mode, &query, cat, 0, &mut out);
                    black_box(out[n - 1])
                })
            });
        }
    }
    group.finish();
}

/// End-to-end diversity edge enumeration at 4k tasks — the
/// `DiversityEdgeCache::build` path the solvers and the serving layer pay
/// on their first solve (runs under the *active* dispatch mode; rerun with
/// `HTA_SIMD=scalar` for the baseline).
fn bench_edge_enum(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/edge-enum");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let n = 4_000usize;
    let (tasks, _) = build_pools(n, n / 10, 4, 0x51);
    group.bench_with_input(
        BenchmarkId::new(format!("build/{}", active_mode().name()), n),
        &tasks,
        |b, tasks| {
            b.iter(|| black_box(DiversityEdgeCache::build(tasks, &Jaccard, 1).edges().len()))
        },
    );
    group.finish();
}

// ---- BENCH_kernels.json: machine-readable kernel throughput ---------------

fn best_of(runs: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..runs).map(|_| f()).min().expect("runs >= 1")
}

/// Re-measure each sweep point, verify scalar/SIMD bit-identity on the
/// measured inputs, and write `BENCH_kernels.json` at the repo root.
fn emit_kernels_json() {
    let runs = 5usize;
    let mut rows: Vec<String> = Vec::new();

    for &n in &catalog_sizes() {
        let (cat, query) = random_catalog(n, 0x5144);
        let mut reference = vec![0.0f64; n];
        jaccard_one_vs_many_with_mode(SimdMode::Scalar, &query, &cat, 0, &mut reference);
        let mut scalar_s = f64::NAN;
        for &mode in &modes() {
            let mut out = vec![0.0f64; n];
            let elapsed = best_of(runs, || {
                let start = std::time::Instant::now();
                jaccard_one_vs_many_with_mode(mode, &query, &cat, 0, &mut out);
                start.elapsed()
            });
            // Parity smoke: any scalar-vs-SIMD divergence on the measured
            // input is a hard failure, not a perf data point.
            for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "kernel parity violation: mode {} diverges from scalar at row {i} (n={n})",
                    mode.name()
                );
            }
            let secs = elapsed.as_secs_f64();
            if mode == SimdMode::Scalar {
                scalar_s = secs;
            }
            let speedup = scalar_s / secs;
            rows.push(format!(
                "    {{\"kernel\": \"one_vs_many\", \"n_rows\": {n}, \"nbits\": {NBITS}, \
                 \"mode\": \"{}\", \"secs\": {:.9}, \"mrows_per_s\": {:.3}, \
                 \"speedup_vs_scalar\": {:.3}}}",
                mode.name(),
                secs,
                n as f64 / secs / 1e6,
                speedup
            ));
        }
    }

    // Edge enumeration end-to-end (active mode; the CI parity job reruns
    // the suite under HTA_SIMD=scalar for the baseline).
    let n = 4_000usize;
    let (tasks, _) = build_pools(n, n / 10, 4, 0x51);
    let mut edges = 0usize;
    let elapsed = best_of(3, || {
        let start = std::time::Instant::now();
        edges = DiversityEdgeCache::build(&tasks, &Jaccard, 1).edges().len();
        start.elapsed()
    });
    rows.push(format!(
        "    {{\"kernel\": \"edge_enum\", \"n_tasks\": {n}, \"mode\": \"{}\", \
         \"edges\": {edges}, \"edge_enum_s\": {:.6}}}",
        active_mode().name(),
        elapsed.as_secs_f64()
    ));

    // Recorded caveat (per the acceptance criteria): on the 1-vCPU CI box
    // (shared Xeon @ 2.1 GHz, single shuffle port, ~15 GB/s effective DRAM
    // bandwidth) the end-to-end Jaccard fill tops out around 3× scalar —
    // in-cache it is shuffle-port-bound (~5 cycles/row against a ~5-cycle
    // port floor for the LUT popcount + reduction) and streaming it sits
    // on the memory wall. The ≥4× target assumes desktop-class cores
    // (two shuffle ports and multi-channel memory) or AVX-512 VPOPCNTDQ.
    let caveat = "1-vCPU shared Xeon: shuffle-port and DRAM-bandwidth bound, ~3x ceiling";
    let json = format!(
        "{{\n  \"group\": \"kernels\",\n  \"active_mode\": \"{}\",\n  \"caveat\": \"{}\",\n  \"samples\": [\n{}\n  ]\n}}\n",
        active_mode().name(),
        caveat,
        rows.join(",\n")
    );
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // repo root
    path.push("BENCH_kernels.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("kernel throughput written to {}", path.display()),
        Err(e) => eprintln!("BENCH_kernels.json write failed: {e}"),
    }
}

criterion_group!(benches, bench_one_vs_many, bench_edge_enum);

fn main() {
    benches();
    emit_kernels_json();
}
