//! Criterion micro-benchmarks of the end-to-end solvers (Fig. 2a at
//! regression-tracking sizes): HTA-APP vs HTA-GRE vs baselines, plus the
//! parallel-pipeline thread sweep and the per-iteration edge-reuse path.
//!
//! Besides the criterion output, the run emits `BENCH_solvers.json` at the
//! repo root: per-phase wall-clock (`edge_enum` / `matching` / `lsap` /
//! `total`) for every (|T|, threads) point so the perf trajectory stays
//! machine-readable across PRs.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use hta_bench::{build_instance, build_pools};
use hta_core::prelude::*;
use hta_core::solver::{
    solve_open_subset, solve_open_subset_sparse_warm, solve_open_subset_warm, SparseWarmState,
    WarmState,
};
use hta_core::sparse::SparseEdgeCache;
use hta_core::{keywords_fingerprint, DiversityEdgeCache};
use hta_index::{CandidatePool, InvertedIndex, PoolMaintainer, PoolParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/end-to-end");
    group.sample_size(10);
    for &n in &[300usize, 600, 1200] {
        let inst = build_instance(n, 60, 20, 10, 0x50);
        let cases: Vec<(&str, Box<dyn Solver>)> = vec![
            ("hta-app", Box::new(HtaApp::new())),
            ("hta-app-structured", Box::new(HtaApp::structured())),
            ("hta-gre", Box::new(HtaGre::new())),
            ("hta-gre-structured", Box::new(HtaGre::structured())),
            ("greedy-relevance", Box::new(GreedyRelevance)),
            ("random", Box::new(RandomAssign)),
        ];
        for (name, solver) in &cases {
            group.bench_with_input(BenchmarkId::new(*name, n), &inst, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                })
            });
        }
    }
    group.finish();
}

/// Sizes for the parallel sweep: 1k/4k always, 10k behind `HTA_BENCH_LARGE`
/// (the dense 10k solve enumerates ~50M task pairs per run).
fn parallel_sizes() -> Vec<usize> {
    let mut sizes = vec![1_000usize, 4_000];
    if std::env::var("HTA_BENCH_LARGE").is_ok() {
        sizes.push(10_000);
    } else {
        println!("solvers/parallel: set HTA_BENCH_LARGE=1 for the 10k point");
    }
    sizes
}

/// Thread sweep over the parallel QAP pipeline plus the edge-reuse path.
/// Output is byte-identical at every thread count, so the sweep measures
/// pure wall-clock; `reuse` feeds the presorted catalog edge list to the
/// solver the way the iteration engine / crowd platform do each round.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/parallel");
    group.sample_size(10);
    for &n in &parallel_sizes() {
        let inst = build_instance(n, n / 10, 20, 10, 0x51);
        for &threads in &[1usize, 2, 4, 8] {
            let solver = HtaGre::structured().with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("hta-gre-structured/t{threads}"), n),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(1);
                        black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                    })
                },
            );
        }
        if n <= 1_000 {
            for &threads in &[1usize, 4] {
                let solver = HtaApp::structured().with_threads(threads);
                group.bench_with_input(
                    BenchmarkId::new(format!("hta-app-structured/t{threads}"), n),
                    &inst,
                    |b, inst| {
                        b.iter(|| {
                            let mut rng = StdRng::seed_from_u64(1);
                            black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                        })
                    },
                );
            }
        }
        // Edge reuse: enumerate + sort the catalog's diversity edges once,
        // then solve against the presorted list (every iteration after the
        // first pays only the filter, not the O(n²) enumerate + sort).
        let cache = DiversityEdgeCache::from_instance(&inst, 1);
        let solver = HtaGre::structured().with_threads(1);
        group.bench_with_input(
            BenchmarkId::new("hta-gre-structured/reuse", n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(
                        solver
                            .solve_with_diversity_edges(inst, cache.edges(), &mut rng)
                            .assignment
                            .assigned_count(),
                    )
                })
            },
        );
    }
    group.finish();
}

// ---- Warm-start churn sweep -----------------------------------------------

/// Churn levels for the warm sweep: percent of the catalog toggled between
/// consecutive solves.
const WARM_CHURN_PCT: [usize; 3] = [1, 5, 25];

/// Open subsets for one churn level: `a` is the full catalog, `b` removes
/// `⌈n·pct/100⌉` distinct tasks. Alternating solves between the two
/// exercises both repair directions (close on a→b, reopen on b→a) at a
/// constant churn magnitude.
fn churn_pair(n: usize, pct: usize) -> (Vec<usize>, Vec<usize>) {
    let a: Vec<usize> = (0..n).collect();
    let k = (n * pct).div_ceil(100);
    let mut rng = StdRng::seed_from_u64(0xC0_0052 ^ n as u64);
    let mut removed = std::collections::BTreeSet::new();
    while removed.len() < k {
        removed.insert(rng.random_range(0..n as u32) as usize);
    }
    let b: Vec<usize> = (0..n).filter(|v| !removed.contains(v)).collect();
    (a, b)
}

/// The sub-instance a serving layer builds for an open subset: local task
/// ids 0.. in open order over the shared worker pool.
fn sub_instance(tasks: &[Task], workers: &[Worker], open: &[usize], xmax: usize) -> Instance {
    let local: Vec<Task> = open
        .iter()
        .enumerate()
        .map(|(li, &ci)| {
            Task::new(
                TaskId(li as u32),
                tasks[ci].group,
                tasks[ci].keywords.clone(),
            )
        })
        .collect();
    Instance::new(local, workers.to_vec(), xmax).expect("generated instances are well-formed")
}

/// Warm-start sweep: steady-state warm solves alternating between two open
/// subsets that differ by the churn fraction, so every measured solve pays
/// one local matching repair instead of a full rebuild. A cold comparator
/// on the same churned subset (edge-cache filter + full matching rebuild)
/// anchors the speedup; warm ≡ cold output is property-tested in
/// `hta-core`'s `warm_identity` suite, so this group tracks wall-clock
/// only.
fn bench_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/warm");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 4_000] {
        let (tasks, workers) = build_pools(n, n / 10, 20, 0x51);
        let cache = DiversityEdgeCache::build(&tasks, &Jaccard, 1);
        let solver = HtaGre::structured().with_threads(1);
        for &pct in &WARM_CHURN_PCT {
            let (a, b) = churn_pair(n, pct);
            let inst_a = sub_instance(&tasks, &workers, &a, 10);
            let inst_b = sub_instance(&tasks, &workers, &b, 10);
            let mut warm = WarmState::new(&cache);
            // Prime: the first warm solve pays the full matching build.
            let mut rng = StdRng::seed_from_u64(1);
            solve_open_subset_warm(
                &solver,
                &inst_a,
                &a,
                Some(&cache),
                Some(&mut warm),
                &mut rng,
            );
            let mut flip = false;
            group.bench_function(
                BenchmarkId::new(format!("hta-gre-structured/warm/c{pct}"), n),
                |bench| {
                    bench.iter(|| {
                        let (inst, open) = if flip { (&inst_a, &a) } else { (&inst_b, &b) };
                        flip = !flip;
                        let mut rng = StdRng::seed_from_u64(1);
                        black_box(
                            solve_open_subset_warm(
                                &solver,
                                inst,
                                open,
                                Some(&cache),
                                Some(&mut warm),
                                &mut rng,
                            )
                            .assignment
                            .assigned_count(),
                        )
                    })
                },
            );
        }
        // Cold anchor: the same subset solved through the plain edge-cache
        // path every time (its cost is churn-independent).
        let (_, b) = churn_pair(n, WARM_CHURN_PCT[0]);
        let inst_b = sub_instance(&tasks, &workers, &b, 10);
        group.bench_function(BenchmarkId::new("hta-gre-structured/cold", n), |bench| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(
                    solve_open_subset(&solver, &inst_b, &b, Some(&cache), &mut rng)
                        .assignment
                        .assigned_count(),
                )
            })
        });
    }
    group.finish();
}

// ---- Sparse warm-start sweep (past the dense edge-cache cap) --------------

/// Pool depths for the sparse frontier: per-worker top-k retrieved into the
/// candidate pool.
const SPARSE_POOL_KS: [usize; 4] = [8, 16, 32, 64];
/// Catalog fraction closed/reopened between consecutive sparse solves.
const SPARSE_CHURN_PCT: usize = 1;
const SPARSE_WORKERS: usize = 20;
const SPARSE_XMAX: usize = 10;

/// Catalog sizes for the sparse sweep: 100k always (far past the 4,096-task
/// dense cap), 1M behind `HTA_BENCH_LARGE`.
fn sparse_sizes() -> Vec<usize> {
    let mut sizes = vec![100_000usize];
    if std::env::var("HTA_BENCH_LARGE").is_ok() {
        sizes.push(1_000_000);
    } else {
        println!("solvers/sparse: set HTA_BENCH_LARGE=1 for the 1M point");
    }
    sizes
}

/// Catalog + live index for the sparse sweep, plus the churn set: `churn`
/// holds `⌈n·pct/100⌉` distinct task ids toggled closed/open between
/// consecutive solves (both repair directions at constant magnitude, as in
/// [`churn_pair`]).
struct SparseHarness {
    tasks: Vec<Task>,
    workers: Vec<Worker>,
    index: InvertedIndex,
    churn: Vec<u32>,
}

impl SparseHarness {
    fn build(n: usize, seed: u64) -> Self {
        let (tasks, workers) = build_pools(n, (n / 100).max(10), SPARSE_WORKERS, seed);
        let nbits = tasks[0].keywords.nbits();
        let mut index = InvertedIndex::new(nbits);
        for t in &tasks {
            index.insert(t.id.0, &t.keywords);
        }
        let k = (n * SPARSE_CHURN_PCT).div_ceil(100);
        let mut rng = StdRng::seed_from_u64(0x005C_A25E ^ n as u64);
        let mut churn = std::collections::BTreeSet::new();
        while churn.len() < k {
            churn.insert(rng.random_range(0..n as u32));
        }
        Self {
            tasks,
            workers,
            index,
            churn: churn.into_iter().collect(),
        }
    }

    /// Close the churn set (index + maintainer), or reopen it.
    fn apply_churn(&mut self, close: bool, maint: Option<&mut PoolMaintainer>) {
        if close {
            for &t in &self.churn {
                self.index.remove(t);
            }
            if let Some(m) = maint {
                for &t in &self.churn {
                    m.apply_remove(t);
                }
            }
        } else {
            for &t in &self.churn {
                self.index.insert(t, &self.tasks[t as usize].keywords);
            }
            if let Some(m) = maint {
                for &t in &self.churn {
                    m.apply_insert(t, &self.tasks[t as usize].keywords);
                }
            }
        }
    }

    fn cohort(&self) -> Vec<(u64, &KeywordVec)> {
        self.workers
            .iter()
            .map(|w| (w.id.0 as u64, &w.keywords))
            .collect()
    }
}

/// One warm sparse iteration: absorb nothing (churn was applied by the
/// caller), refresh the pool through the maintainer, delta-refresh the
/// sparse edge cache, and warm-repair the matching. Returns the solve
/// output, the pool size, and the objective.
fn sparse_warm_iter(
    h: &SparseHarness,
    solver: &HtaGre,
    maint: &mut PoolMaintainer,
    cache: &mut SparseEdgeCache,
    warm: &mut Option<SparseWarmState>,
) -> (usize, f64, hta_core::solver::SolveOutcome) {
    let cohort = h.cohort();
    let (pool, _delta) = maint.pool_for(&h.index, &cohort, SPARSE_XMAX);
    let tasks = &h.tasks;
    let weight = |u: u32, v: u32| {
        hta_core::kernels::jaccard_distance(
            &tasks[u as usize].keywords,
            &tasks[v as usize].keywords,
        )
    };
    cache.refresh(pool.members(), weight);
    if warm.is_none() {
        *warm = Some(SparseWarmState::new(cache));
    }
    let open: Vec<usize> = pool.members().iter().map(|&t| t as usize).collect();
    let inst = sub_instance(&h.tasks, &h.workers, &open, SPARSE_XMAX);
    let mut rng = StdRng::seed_from_u64(1);
    let out =
        solve_open_subset_sparse_warm(solver, &inst, &open, Some(cache), warm.as_mut(), &mut rng);
    let obj = out.assignment.objective(&inst);
    (open.len(), obj, out)
}

/// One cold sparse iteration: regenerate the candidate pool from the index
/// (per-worker top-k scans over the full catalog), build the pool
/// sub-instance, and solve from scratch (pool-sized dense enumeration
/// inside the solver).
fn sparse_cold_iter(
    h: &SparseHarness,
    solver: &HtaGre,
    k: usize,
) -> (usize, f64, hta_core::solver::SolveOutcome) {
    let pool = CandidatePool::generate(&h.index, &h.workers, SPARSE_XMAX, &PoolParams::with_k(k));
    let open: Vec<usize> = pool.members().iter().map(|&t| t as usize).collect();
    let inst = sub_instance(&h.tasks, &h.workers, &open, SPARSE_XMAX);
    let mut rng = StdRng::seed_from_u64(1);
    let out = solver.solve(&inst, &mut rng);
    let obj = out.assignment.objective(&inst);
    (open.len(), obj, out)
}

/// Steady-state sparse sweep at the frontier pool depths: warm (maintainer
/// delta + cache refresh + matching repair) vs cold (top-k regeneration +
/// scratch solve) per iteration, at 1% catalog churn. Warm ≡ cold output
/// is pinned by `hta-crowd`'s `sparse_identity` suite, so this group
/// tracks wall-clock only.
fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/sparse");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for &n in &sparse_sizes() {
        let k = 32usize;
        let mut h = SparseHarness::build(n, 0x53);
        let solver = HtaGre::structured().with_threads(1);
        let mut maint = PoolMaintainer::new(k);
        let fp = keywords_fingerprint(h.tasks.iter().map(|t| &t.keywords));
        let mut cache = SparseEdgeCache::new(fp, h.tasks.len());
        let mut warm = None;
        // Prime at the fully-open state.
        sparse_warm_iter(&h, &solver, &mut maint, &mut cache, &mut warm);
        // Churn absorption (index/maintainer bookkeeping between
        // iterations) happens in both modes identically, so it is
        // applied *outside* the timed window: the measured region is
        // one assignment iteration — pool, edges, solve.
        let mut closed = false;
        group.bench_function(BenchmarkId::new(format!("warm/k{k}/c1"), n), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    closed = !closed;
                    h.apply_churn(closed, Some(&mut maint));
                    let start = std::time::Instant::now();
                    let (members, _, out) =
                        sparse_warm_iter(&h, &solver, &mut maint, &mut cache, &mut warm);
                    black_box((members, out.assignment.assigned_count()));
                    total += start.elapsed();
                }
                total
            })
        });
        let mut h = SparseHarness::build(n, 0x53);
        let mut closed = false;
        group.bench_function(BenchmarkId::new(format!("cold/k{k}/c1"), n), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    closed = !closed;
                    h.apply_churn(closed, None);
                    let start = std::time::Instant::now();
                    let (members, _, out) = sparse_cold_iter(&h, &solver, k);
                    black_box((members, out.assignment.assigned_count()));
                    total += start.elapsed();
                }
                total
            })
        });
    }
    group.finish();
}

// ---- BENCH_solvers.json: machine-readable per-phase timings ---------------

struct PhaseSample {
    label: String,
    n_tasks: usize,
    threads: usize,
    /// Churn percent for warm-sweep rows; `None` for the cold sweeps.
    churn_pct: Option<usize>,
    /// `(per-worker k, pool members)` for sparse-sweep rows.
    pool: Option<(usize, usize)>,
    edge_enum: Duration,
    matching: Duration,
    lsap: Duration,
    total: Duration,
}

fn best_of<R>(runs: usize, mut f: impl FnMut() -> (R, Duration)) -> (R, Duration) {
    let mut best = f();
    for _ in 1..runs {
        let next = f();
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

/// Re-measure every sweep point once more, capturing the [`PhaseTimings`]
/// breakdown (criterion's loop only sees totals), and write the lot to
/// `BENCH_solvers.json` at the repo root.
fn emit_phase_json() {
    let runs = 3usize;
    let mut samples: Vec<PhaseSample> = Vec::new();
    for &n in &parallel_sizes() {
        let inst = build_instance(n, n / 10, 20, 10, 0x51);
        for &threads in &[1usize, 2, 4, 8] {
            let solver = HtaGre::structured().with_threads(threads);
            let (out, wall) = best_of(runs, || {
                let start = std::time::Instant::now();
                let mut rng = StdRng::seed_from_u64(1);
                let out = solver.solve(&inst, &mut rng);
                (out, start.elapsed())
            });
            samples.push(PhaseSample {
                label: "hta-gre-structured".into(),
                n_tasks: n,
                threads,
                churn_pct: None,
                pool: None,
                edge_enum: out.timings.edge_enum,
                matching: out.timings.matching,
                lsap: out.timings.lsap,
                total: wall,
            });
        }
        let cache = DiversityEdgeCache::from_instance(&inst, 1);
        let solver = HtaGre::structured().with_threads(1);
        let (out, wall) = best_of(runs, || {
            let start = std::time::Instant::now();
            let mut rng = StdRng::seed_from_u64(1);
            let out = solver.solve_with_diversity_edges(&inst, cache.edges(), &mut rng);
            (out, start.elapsed())
        });
        samples.push(PhaseSample {
            label: "hta-gre-structured/reuse".into(),
            n_tasks: n,
            threads: 1,
            churn_pct: None,
            pool: None,
            edge_enum: out.timings.edge_enum,
            matching: out.timings.matching,
            lsap: out.timings.lsap,
            total: wall,
        });
    }

    // Warm-start churn sweep: the steady-state repair cost at each churn
    // level, one row per (|T|, churn%). `matching_s` here is the local
    // repair + extraction, the phase the cold rows rebuild from scratch.
    for &n in &[1_000usize, 4_000] {
        let (tasks, workers) = build_pools(n, n / 10, 20, 0x51);
        let cache = DiversityEdgeCache::build(&tasks, &Jaccard, 1);
        let solver = HtaGre::structured().with_threads(1);
        for &pct in &WARM_CHURN_PCT {
            let (a, b) = churn_pair(n, pct);
            let inst_a = sub_instance(&tasks, &workers, &a, 10);
            let inst_b = sub_instance(&tasks, &workers, &b, 10);
            let mut warm = WarmState::new(&cache);
            let mut rng = StdRng::seed_from_u64(1);
            solve_open_subset_warm(
                &solver,
                &inst_a,
                &a,
                Some(&cache),
                Some(&mut warm),
                &mut rng,
            );
            let (out, wall) = best_of(runs, || {
                // Measured: a → b (one churn delta repaired warm)…
                let start = std::time::Instant::now();
                let mut rng = StdRng::seed_from_u64(1);
                let out = solve_open_subset_warm(
                    &solver,
                    &inst_b,
                    &b,
                    Some(&cache),
                    Some(&mut warm),
                    &mut rng,
                );
                let wall = start.elapsed();
                // …then b → a unmeasured, restoring the state for the next run.
                let mut rng = StdRng::seed_from_u64(1);
                solve_open_subset_warm(
                    &solver,
                    &inst_a,
                    &a,
                    Some(&cache),
                    Some(&mut warm),
                    &mut rng,
                );
                (out, wall)
            });
            samples.push(PhaseSample {
                label: "hta-gre-structured/warm".into(),
                n_tasks: n,
                threads: 1,
                churn_pct: Some(pct),
                pool: None,
                edge_enum: out.timings.edge_enum,
                matching: out.timings.matching,
                lsap: out.timings.lsap,
                total: wall,
            });
        }
    }

    // Sparse sweep past the dense cap: one warm + one cold row per
    // (|T|, k), steady-state at 1% catalog churn. Churn absorption (index
    // and maintainer bookkeeping between iterations) is identical platform
    // work in both modes, so it runs *outside* the timer: `total_s` covers
    // one assignment iteration — pool (re)generation, edge work, solve —
    // and warm/cold rows divide into the headline speedup directly. Also
    // prints the pool-size frontier (objective vs. time) for EXPERIMENTS.md;
    // the frontier objective is sampled at the fully-open state so rows are
    // parity-comparable across k.
    let sparse_runs = 5usize;
    println!("sparse frontier (|T|, k, members, objective, warm_s, cold_s):");
    for &n in &sparse_sizes() {
        for &k in &SPARSE_POOL_KS {
            let mut h = SparseHarness::build(n, 0x53);
            let solver = HtaGre::structured().with_threads(1);
            let mut maint = PoolMaintainer::new(k);
            let fp = keywords_fingerprint(h.tasks.iter().map(|t| &t.keywords));
            let mut cache = SparseEdgeCache::new(fp, h.tasks.len());
            let mut warm = None;
            sparse_warm_iter(&h, &solver, &mut maint, &mut cache, &mut warm); // prime
            let mut closed = false;
            let ((_, _, out), wall) = best_of(sparse_runs, || {
                closed = !closed;
                h.apply_churn(closed, Some(&mut maint));
                let start = std::time::Instant::now();
                let r = sparse_warm_iter(&h, &solver, &mut maint, &mut cache, &mut warm);
                (r, start.elapsed())
            });
            if closed {
                h.apply_churn(false, Some(&mut maint));
            }
            let (members, objective, _) =
                sparse_warm_iter(&h, &solver, &mut maint, &mut cache, &mut warm);
            samples.push(PhaseSample {
                label: "hta-gre-structured/sparse/warm".into(),
                n_tasks: n,
                threads: 1,
                churn_pct: Some(SPARSE_CHURN_PCT),
                pool: Some((k, members)),
                edge_enum: out.timings.edge_enum,
                matching: out.timings.matching,
                lsap: out.timings.lsap,
                total: wall,
            });
            let mut h = SparseHarness::build(n, 0x53);
            let mut closed = false;
            let ((_, _, out), cold_wall) = best_of(sparse_runs, || {
                closed = !closed;
                h.apply_churn(closed, None);
                let start = std::time::Instant::now();
                let r = sparse_cold_iter(&h, &solver, k);
                (r, start.elapsed())
            });
            if closed {
                h.apply_churn(false, None);
            }
            let (cold_members, cold_obj, _) = sparse_cold_iter(&h, &solver, k);
            // Maintainer exactness + solve identity, end to end: at the
            // same (fully-open) state the two modes must agree bit for bit.
            assert_eq!(members, cold_members, "sparse warm/cold pools diverged");
            assert_eq!(
                objective.to_bits(),
                cold_obj.to_bits(),
                "sparse warm/cold objectives diverged at the all-open state"
            );
            samples.push(PhaseSample {
                label: "hta-gre-structured/sparse/cold".into(),
                n_tasks: n,
                threads: 1,
                churn_pct: Some(SPARSE_CHURN_PCT),
                pool: Some((k, cold_members)),
                edge_enum: out.timings.edge_enum,
                matching: out.timings.matching,
                lsap: out.timings.lsap,
                total: cold_wall,
            });
            println!(
                "  {n} {k} {members} {objective:.6} {:.6} {:.6} (speedup {:.1}x)",
                wall.as_secs_f64(),
                cold_wall.as_secs_f64(),
                cold_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9),
            );
        }
    }

    let mut json = String::from("{\n  \"group\": \"solvers/parallel\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let churn = s
            .churn_pct
            .map_or(String::new(), |p| format!("\"churn_pct\": {p}, "));
        let pool = s.pool.map_or(String::new(), |(k, m)| {
            format!("\"pool_k\": {k}, \"pool_members\": {m}, ")
        });
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"n_tasks\": {}, \"threads\": {}, {}{}\
             \"edge_enum_s\": {:.6}, \"matching_s\": {:.6}, \"lsap_s\": {:.6}, \
             \"total_s\": {:.6}}}{}\n",
            s.label,
            s.n_tasks,
            s.threads,
            churn,
            pool,
            s.edge_enum.as_secs_f64(),
            s.matching.as_secs_f64(),
            s.lsap.as_secs_f64(),
            s.total.as_secs_f64(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // repo root
    path.push("BENCH_solvers.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("per-phase timings written to {}", path.display()),
        Err(e) => eprintln!("BENCH_solvers.json write failed: {e}"),
    }
}

criterion_group!(
    benches,
    bench_solvers,
    bench_parallel,
    bench_warm,
    bench_sparse
);

fn main() {
    benches();
    emit_phase_json();
}
