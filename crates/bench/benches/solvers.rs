//! Criterion micro-benchmarks of the end-to-end solvers (Fig. 2a at
//! regression-tracking sizes): HTA-APP vs HTA-GRE vs baselines, plus the
//! parallel-pipeline thread sweep and the per-iteration edge-reuse path.
//!
//! Besides the criterion output, the run emits `BENCH_solvers.json` at the
//! repo root: per-phase wall-clock (`edge_enum` / `matching` / `lsap` /
//! `total`) for every (|T|, threads) point so the perf trajectory stays
//! machine-readable across PRs.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use hta_bench::build_instance;
use hta_core::prelude::*;
use hta_core::DiversityEdgeCache;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/end-to-end");
    group.sample_size(10);
    for &n in &[300usize, 600, 1200] {
        let inst = build_instance(n, 60, 20, 10, 0x50);
        let cases: Vec<(&str, Box<dyn Solver>)> = vec![
            ("hta-app", Box::new(HtaApp::new())),
            ("hta-app-structured", Box::new(HtaApp::structured())),
            ("hta-gre", Box::new(HtaGre::new())),
            ("hta-gre-structured", Box::new(HtaGre::structured())),
            ("greedy-relevance", Box::new(GreedyRelevance)),
            ("random", Box::new(RandomAssign)),
        ];
        for (name, solver) in &cases {
            group.bench_with_input(BenchmarkId::new(*name, n), &inst, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                })
            });
        }
    }
    group.finish();
}

/// Sizes for the parallel sweep: 1k/4k always, 10k behind `HTA_BENCH_LARGE`
/// (the dense 10k solve enumerates ~50M task pairs per run).
fn parallel_sizes() -> Vec<usize> {
    let mut sizes = vec![1_000usize, 4_000];
    if std::env::var("HTA_BENCH_LARGE").is_ok() {
        sizes.push(10_000);
    } else {
        println!("solvers/parallel: set HTA_BENCH_LARGE=1 for the 10k point");
    }
    sizes
}

/// Thread sweep over the parallel QAP pipeline plus the edge-reuse path.
/// Output is byte-identical at every thread count, so the sweep measures
/// pure wall-clock; `reuse` feeds the presorted catalog edge list to the
/// solver the way the iteration engine / crowd platform do each round.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/parallel");
    group.sample_size(10);
    for &n in &parallel_sizes() {
        let inst = build_instance(n, n / 10, 20, 10, 0x51);
        for &threads in &[1usize, 2, 4, 8] {
            let solver = HtaGre::structured().with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("hta-gre-structured/t{threads}"), n),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(1);
                        black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                    })
                },
            );
        }
        if n <= 1_000 {
            for &threads in &[1usize, 4] {
                let solver = HtaApp::structured().with_threads(threads);
                group.bench_with_input(
                    BenchmarkId::new(format!("hta-app-structured/t{threads}"), n),
                    &inst,
                    |b, inst| {
                        b.iter(|| {
                            let mut rng = StdRng::seed_from_u64(1);
                            black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                        })
                    },
                );
            }
        }
        // Edge reuse: enumerate + sort the catalog's diversity edges once,
        // then solve against the presorted list (every iteration after the
        // first pays only the filter, not the O(n²) enumerate + sort).
        let cache = DiversityEdgeCache::from_instance(&inst, 1);
        let solver = HtaGre::structured().with_threads(1);
        group.bench_with_input(
            BenchmarkId::new("hta-gre-structured/reuse", n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(
                        solver
                            .solve_with_diversity_edges(inst, cache.edges(), &mut rng)
                            .assignment
                            .assigned_count(),
                    )
                })
            },
        );
    }
    group.finish();
}

// ---- BENCH_solvers.json: machine-readable per-phase timings ---------------

struct PhaseSample {
    label: String,
    n_tasks: usize,
    threads: usize,
    edge_enum: Duration,
    matching: Duration,
    lsap: Duration,
    total: Duration,
}

fn best_of<R>(runs: usize, mut f: impl FnMut() -> (R, Duration)) -> (R, Duration) {
    let mut best = f();
    for _ in 1..runs {
        let next = f();
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

/// Re-measure every sweep point once more, capturing the [`PhaseTimings`]
/// breakdown (criterion's loop only sees totals), and write the lot to
/// `BENCH_solvers.json` at the repo root.
fn emit_phase_json() {
    let runs = 3usize;
    let mut samples: Vec<PhaseSample> = Vec::new();
    for &n in &parallel_sizes() {
        let inst = build_instance(n, n / 10, 20, 10, 0x51);
        for &threads in &[1usize, 2, 4, 8] {
            let solver = HtaGre::structured().with_threads(threads);
            let (out, wall) = best_of(runs, || {
                let start = std::time::Instant::now();
                let mut rng = StdRng::seed_from_u64(1);
                let out = solver.solve(&inst, &mut rng);
                (out, start.elapsed())
            });
            samples.push(PhaseSample {
                label: "hta-gre-structured".into(),
                n_tasks: n,
                threads,
                edge_enum: out.timings.edge_enum,
                matching: out.timings.matching,
                lsap: out.timings.lsap,
                total: wall,
            });
        }
        let cache = DiversityEdgeCache::from_instance(&inst, 1);
        let solver = HtaGre::structured().with_threads(1);
        let (out, wall) = best_of(runs, || {
            let start = std::time::Instant::now();
            let mut rng = StdRng::seed_from_u64(1);
            let out = solver.solve_with_diversity_edges(&inst, cache.edges(), &mut rng);
            (out, start.elapsed())
        });
        samples.push(PhaseSample {
            label: "hta-gre-structured/reuse".into(),
            n_tasks: n,
            threads: 1,
            edge_enum: out.timings.edge_enum,
            matching: out.timings.matching,
            lsap: out.timings.lsap,
            total: wall,
        });
    }

    let mut json = String::from("{\n  \"group\": \"solvers/parallel\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"n_tasks\": {}, \"threads\": {}, \
             \"edge_enum_s\": {:.6}, \"matching_s\": {:.6}, \"lsap_s\": {:.6}, \
             \"total_s\": {:.6}}}{}\n",
            s.label,
            s.n_tasks,
            s.threads,
            s.edge_enum.as_secs_f64(),
            s.matching.as_secs_f64(),
            s.lsap.as_secs_f64(),
            s.total.as_secs_f64(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // repo root
    path.push("BENCH_solvers.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("per-phase timings written to {}", path.display()),
        Err(e) => eprintln!("BENCH_solvers.json write failed: {e}"),
    }
}

criterion_group!(benches, bench_solvers, bench_parallel);

fn main() {
    benches();
    emit_phase_json();
}
