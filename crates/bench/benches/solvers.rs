//! Criterion micro-benchmarks of the end-to-end solvers (Fig. 2a at
//! regression-tracking sizes): HTA-APP vs HTA-GRE vs baselines.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hta_bench::build_instance;
use hta_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/end-to-end");
    group.sample_size(10);
    for &n in &[300usize, 600, 1200] {
        let inst = build_instance(n, 60, 20, 10, 0x50);
        let cases: Vec<(&str, Box<dyn Solver>)> = vec![
            ("hta-app", Box::new(HtaApp::new())),
            ("hta-app-structured", Box::new(HtaApp::structured())),
            ("hta-gre", Box::new(HtaGre::new())),
            ("hta-gre-structured", Box::new(HtaGre::structured())),
            ("greedy-relevance", Box::new(GreedyRelevance)),
            ("random", Box::new(RandomAssign)),
        ];
        for (name, solver) in &cases {
            group.bench_with_input(BenchmarkId::new(*name, n), &inst, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
