//! Criterion micro-benchmarks of the end-to-end solvers (Fig. 2a at
//! regression-tracking sizes): HTA-APP vs HTA-GRE vs baselines, plus the
//! parallel-pipeline thread sweep and the per-iteration edge-reuse path.
//!
//! Besides the criterion output, the run emits `BENCH_solvers.json` at the
//! repo root: per-phase wall-clock (`edge_enum` / `matching` / `lsap` /
//! `total`) for every (|T|, threads) point so the perf trajectory stays
//! machine-readable across PRs.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use hta_bench::{build_instance, build_pools};
use hta_core::prelude::*;
use hta_core::solver::{solve_open_subset, solve_open_subset_warm, WarmState};
use hta_core::DiversityEdgeCache;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/end-to-end");
    group.sample_size(10);
    for &n in &[300usize, 600, 1200] {
        let inst = build_instance(n, 60, 20, 10, 0x50);
        let cases: Vec<(&str, Box<dyn Solver>)> = vec![
            ("hta-app", Box::new(HtaApp::new())),
            ("hta-app-structured", Box::new(HtaApp::structured())),
            ("hta-gre", Box::new(HtaGre::new())),
            ("hta-gre-structured", Box::new(HtaGre::structured())),
            ("greedy-relevance", Box::new(GreedyRelevance)),
            ("random", Box::new(RandomAssign)),
        ];
        for (name, solver) in &cases {
            group.bench_with_input(BenchmarkId::new(*name, n), &inst, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                })
            });
        }
    }
    group.finish();
}

/// Sizes for the parallel sweep: 1k/4k always, 10k behind `HTA_BENCH_LARGE`
/// (the dense 10k solve enumerates ~50M task pairs per run).
fn parallel_sizes() -> Vec<usize> {
    let mut sizes = vec![1_000usize, 4_000];
    if std::env::var("HTA_BENCH_LARGE").is_ok() {
        sizes.push(10_000);
    } else {
        println!("solvers/parallel: set HTA_BENCH_LARGE=1 for the 10k point");
    }
    sizes
}

/// Thread sweep over the parallel QAP pipeline plus the edge-reuse path.
/// Output is byte-identical at every thread count, so the sweep measures
/// pure wall-clock; `reuse` feeds the presorted catalog edge list to the
/// solver the way the iteration engine / crowd platform do each round.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/parallel");
    group.sample_size(10);
    for &n in &parallel_sizes() {
        let inst = build_instance(n, n / 10, 20, 10, 0x51);
        for &threads in &[1usize, 2, 4, 8] {
            let solver = HtaGre::structured().with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("hta-gre-structured/t{threads}"), n),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(1);
                        black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                    })
                },
            );
        }
        if n <= 1_000 {
            for &threads in &[1usize, 4] {
                let solver = HtaApp::structured().with_threads(threads);
                group.bench_with_input(
                    BenchmarkId::new(format!("hta-app-structured/t{threads}"), n),
                    &inst,
                    |b, inst| {
                        b.iter(|| {
                            let mut rng = StdRng::seed_from_u64(1);
                            black_box(solver.solve(inst, &mut rng).assignment.assigned_count())
                        })
                    },
                );
            }
        }
        // Edge reuse: enumerate + sort the catalog's diversity edges once,
        // then solve against the presorted list (every iteration after the
        // first pays only the filter, not the O(n²) enumerate + sort).
        let cache = DiversityEdgeCache::from_instance(&inst, 1);
        let solver = HtaGre::structured().with_threads(1);
        group.bench_with_input(
            BenchmarkId::new("hta-gre-structured/reuse", n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(
                        solver
                            .solve_with_diversity_edges(inst, cache.edges(), &mut rng)
                            .assignment
                            .assigned_count(),
                    )
                })
            },
        );
    }
    group.finish();
}

// ---- Warm-start churn sweep -----------------------------------------------

/// Churn levels for the warm sweep: percent of the catalog toggled between
/// consecutive solves.
const WARM_CHURN_PCT: [usize; 3] = [1, 5, 25];

/// Open subsets for one churn level: `a` is the full catalog, `b` removes
/// `⌈n·pct/100⌉` distinct tasks. Alternating solves between the two
/// exercises both repair directions (close on a→b, reopen on b→a) at a
/// constant churn magnitude.
fn churn_pair(n: usize, pct: usize) -> (Vec<usize>, Vec<usize>) {
    let a: Vec<usize> = (0..n).collect();
    let k = (n * pct).div_ceil(100);
    let mut rng = StdRng::seed_from_u64(0xC0_0052 ^ n as u64);
    let mut removed = std::collections::BTreeSet::new();
    while removed.len() < k {
        removed.insert(rng.random_range(0..n as u32) as usize);
    }
    let b: Vec<usize> = (0..n).filter(|v| !removed.contains(v)).collect();
    (a, b)
}

/// The sub-instance a serving layer builds for an open subset: local task
/// ids 0.. in open order over the shared worker pool.
fn sub_instance(tasks: &[Task], workers: &[Worker], open: &[usize], xmax: usize) -> Instance {
    let local: Vec<Task> = open
        .iter()
        .enumerate()
        .map(|(li, &ci)| {
            Task::new(
                TaskId(li as u32),
                tasks[ci].group,
                tasks[ci].keywords.clone(),
            )
        })
        .collect();
    Instance::new(local, workers.to_vec(), xmax).expect("generated instances are well-formed")
}

/// Warm-start sweep: steady-state warm solves alternating between two open
/// subsets that differ by the churn fraction, so every measured solve pays
/// one local matching repair instead of a full rebuild. A cold comparator
/// on the same churned subset (edge-cache filter + full matching rebuild)
/// anchors the speedup; warm ≡ cold output is property-tested in
/// `hta-core`'s `warm_identity` suite, so this group tracks wall-clock
/// only.
fn bench_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers/warm");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 4_000] {
        let (tasks, workers) = build_pools(n, n / 10, 20, 0x51);
        let cache = DiversityEdgeCache::build(&tasks, &Jaccard, 1);
        let solver = HtaGre::structured().with_threads(1);
        for &pct in &WARM_CHURN_PCT {
            let (a, b) = churn_pair(n, pct);
            let inst_a = sub_instance(&tasks, &workers, &a, 10);
            let inst_b = sub_instance(&tasks, &workers, &b, 10);
            let mut warm = WarmState::new(&cache);
            // Prime: the first warm solve pays the full matching build.
            let mut rng = StdRng::seed_from_u64(1);
            solve_open_subset_warm(
                &solver,
                &inst_a,
                &a,
                Some(&cache),
                Some(&mut warm),
                &mut rng,
            );
            let mut flip = false;
            group.bench_function(
                BenchmarkId::new(format!("hta-gre-structured/warm/c{pct}"), n),
                |bench| {
                    bench.iter(|| {
                        let (inst, open) = if flip { (&inst_a, &a) } else { (&inst_b, &b) };
                        flip = !flip;
                        let mut rng = StdRng::seed_from_u64(1);
                        black_box(
                            solve_open_subset_warm(
                                &solver,
                                inst,
                                open,
                                Some(&cache),
                                Some(&mut warm),
                                &mut rng,
                            )
                            .assignment
                            .assigned_count(),
                        )
                    })
                },
            );
        }
        // Cold anchor: the same subset solved through the plain edge-cache
        // path every time (its cost is churn-independent).
        let (_, b) = churn_pair(n, WARM_CHURN_PCT[0]);
        let inst_b = sub_instance(&tasks, &workers, &b, 10);
        group.bench_function(BenchmarkId::new("hta-gre-structured/cold", n), |bench| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(
                    solve_open_subset(&solver, &inst_b, &b, Some(&cache), &mut rng)
                        .assignment
                        .assigned_count(),
                )
            })
        });
    }
    group.finish();
}

// ---- BENCH_solvers.json: machine-readable per-phase timings ---------------

struct PhaseSample {
    label: String,
    n_tasks: usize,
    threads: usize,
    /// Churn percent for warm-sweep rows; `None` for the cold sweeps.
    churn_pct: Option<usize>,
    edge_enum: Duration,
    matching: Duration,
    lsap: Duration,
    total: Duration,
}

fn best_of<R>(runs: usize, mut f: impl FnMut() -> (R, Duration)) -> (R, Duration) {
    let mut best = f();
    for _ in 1..runs {
        let next = f();
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

/// Re-measure every sweep point once more, capturing the [`PhaseTimings`]
/// breakdown (criterion's loop only sees totals), and write the lot to
/// `BENCH_solvers.json` at the repo root.
fn emit_phase_json() {
    let runs = 3usize;
    let mut samples: Vec<PhaseSample> = Vec::new();
    for &n in &parallel_sizes() {
        let inst = build_instance(n, n / 10, 20, 10, 0x51);
        for &threads in &[1usize, 2, 4, 8] {
            let solver = HtaGre::structured().with_threads(threads);
            let (out, wall) = best_of(runs, || {
                let start = std::time::Instant::now();
                let mut rng = StdRng::seed_from_u64(1);
                let out = solver.solve(&inst, &mut rng);
                (out, start.elapsed())
            });
            samples.push(PhaseSample {
                label: "hta-gre-structured".into(),
                n_tasks: n,
                threads,
                churn_pct: None,
                edge_enum: out.timings.edge_enum,
                matching: out.timings.matching,
                lsap: out.timings.lsap,
                total: wall,
            });
        }
        let cache = DiversityEdgeCache::from_instance(&inst, 1);
        let solver = HtaGre::structured().with_threads(1);
        let (out, wall) = best_of(runs, || {
            let start = std::time::Instant::now();
            let mut rng = StdRng::seed_from_u64(1);
            let out = solver.solve_with_diversity_edges(&inst, cache.edges(), &mut rng);
            (out, start.elapsed())
        });
        samples.push(PhaseSample {
            label: "hta-gre-structured/reuse".into(),
            n_tasks: n,
            threads: 1,
            churn_pct: None,
            edge_enum: out.timings.edge_enum,
            matching: out.timings.matching,
            lsap: out.timings.lsap,
            total: wall,
        });
    }

    // Warm-start churn sweep: the steady-state repair cost at each churn
    // level, one row per (|T|, churn%). `matching_s` here is the local
    // repair + extraction, the phase the cold rows rebuild from scratch.
    for &n in &[1_000usize, 4_000] {
        let (tasks, workers) = build_pools(n, n / 10, 20, 0x51);
        let cache = DiversityEdgeCache::build(&tasks, &Jaccard, 1);
        let solver = HtaGre::structured().with_threads(1);
        for &pct in &WARM_CHURN_PCT {
            let (a, b) = churn_pair(n, pct);
            let inst_a = sub_instance(&tasks, &workers, &a, 10);
            let inst_b = sub_instance(&tasks, &workers, &b, 10);
            let mut warm = WarmState::new(&cache);
            let mut rng = StdRng::seed_from_u64(1);
            solve_open_subset_warm(
                &solver,
                &inst_a,
                &a,
                Some(&cache),
                Some(&mut warm),
                &mut rng,
            );
            let (out, wall) = best_of(runs, || {
                // Measured: a → b (one churn delta repaired warm)…
                let start = std::time::Instant::now();
                let mut rng = StdRng::seed_from_u64(1);
                let out = solve_open_subset_warm(
                    &solver,
                    &inst_b,
                    &b,
                    Some(&cache),
                    Some(&mut warm),
                    &mut rng,
                );
                let wall = start.elapsed();
                // …then b → a unmeasured, restoring the state for the next run.
                let mut rng = StdRng::seed_from_u64(1);
                solve_open_subset_warm(
                    &solver,
                    &inst_a,
                    &a,
                    Some(&cache),
                    Some(&mut warm),
                    &mut rng,
                );
                (out, wall)
            });
            samples.push(PhaseSample {
                label: "hta-gre-structured/warm".into(),
                n_tasks: n,
                threads: 1,
                churn_pct: Some(pct),
                edge_enum: out.timings.edge_enum,
                matching: out.timings.matching,
                lsap: out.timings.lsap,
                total: wall,
            });
        }
    }

    let mut json = String::from("{\n  \"group\": \"solvers/parallel\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let churn = s
            .churn_pct
            .map_or(String::new(), |p| format!("\"churn_pct\": {p}, "));
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"n_tasks\": {}, \"threads\": {}, {}\
             \"edge_enum_s\": {:.6}, \"matching_s\": {:.6}, \"lsap_s\": {:.6}, \
             \"total_s\": {:.6}}}{}\n",
            s.label,
            s.n_tasks,
            s.threads,
            churn,
            s.edge_enum.as_secs_f64(),
            s.matching.as_secs_f64(),
            s.lsap.as_secs_f64(),
            s.total.as_secs_f64(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // repo root
    path.push("BENCH_solvers.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("per-phase timings written to {}", path.display()),
        Err(e) => eprintln!("BENCH_solvers.json write failed: {e}"),
    }
}

criterion_group!(benches, bench_solvers, bench_parallel, bench_warm);

fn main() {
    benches();
    emit_phase_json();
}
