//! Index-subsystem micro-benchmarks: inverted-index construction, top-k
//! retrieval, candidate-pool generation at catalog scale, and the headline
//! dense-vs-sparse assignment comparison (build + solve wall-clock and
//! objective ratio).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hta_core::prelude::*;
use hta_core::solver::LocalSearch;
use hta_datagen::amt::{generate_exact, AmtConfig};
use hta_datagen::workers::{synthetic_workers, SyntheticWorkerConfig};
use hta_index::{CandidatePool, InvertedIndex, PoolParams, ShardedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Corpus {
    tasks: Vec<Task>,
    workers: Vec<Worker>,
    nbits: usize,
}

fn corpus(n_tasks: usize, n_workers: usize, seed: u64) -> Corpus {
    let amt = generate_exact(
        &AmtConfig {
            seed,
            ..AmtConfig::with_totals(n_tasks, (n_tasks / 10).max(1))
        },
        n_tasks,
    );
    let nbits = amt.space.len();
    let pool = synthetic_workers(
        nbits,
        &SyntheticWorkerConfig {
            n_workers,
            seed: seed ^ 0x77,
            ..Default::default()
        },
    );
    Corpus {
        tasks: amt.tasks.tasks().to_vec(),
        workers: pool.workers().to_vec(),
        nbits,
    }
}

fn build_index(c: &Corpus) -> InvertedIndex {
    let pairs: Vec<(u32, &KeywordVec)> = c.tasks.iter().map(|t| (t.id.0, &t.keywords)).collect();
    InvertedIndex::build(c.nbits, &pairs, hta_index::par::default_threads())
}

/// Index build, top-k query, and pool generation at 1k / 10k / 100k tasks.
fn bench_index_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/scaling");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let corpus = corpus(n, 20, 0xA1);
        group.bench_with_input(BenchmarkId::new("build", n), &corpus, |b, c| {
            b.iter(|| black_box(build_index(c).len()))
        });
        let index = build_index(&corpus);
        group.bench_with_input(BenchmarkId::new("top-k16", n), &corpus, |b, c| {
            b.iter(|| {
                let mut hits = 0usize;
                for w in &c.workers {
                    hits += index.top_k(&w.keywords, 16).len();
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("pool", n), &corpus, |b, c| {
            b.iter(|| {
                let pool = CandidatePool::generate(&index, &c.workers, 10, &PoolParams::with_k(16));
                black_box(pool.len())
            })
        });
    }
    group.finish();
}

/// Deterministic keyword vectors straight from a SplitMix64 stream — the
/// AMT datagen pipeline interns group/vocab structures and is far too slow
/// to materialize the 1M–10M-task corpora this group runs at.
fn synthetic_vecs(
    n: usize,
    nbits: usize,
    kw_lo: usize,
    kw_hi: usize,
    seed: u64,
) -> Vec<KeywordVec> {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let mut v = KeywordVec::new(nbits);
            let n_kw = kw_lo + (next() % (kw_hi - kw_lo + 1) as u64) as usize;
            for _ in 0..n_kw {
                v.set((next() % nbits as u64) as usize);
            }
            v
        })
        .collect()
}

/// Sharded vs unsharded bulk build and top-k at catalog scale. 100k runs by
/// default; set `HTA_BENCH_LARGE=1` for the 1M / 10M points (tens of
/// seconds per build on one core). The sharded build's win is structural
/// even on a single core: each shard owns its keyword range end-to-end, so
/// there is no sequential posting-merge / backref-rebuild pass.
fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/sharded");
    group.sample_size(10);
    let mut sizes = vec![100_000usize];
    if std::env::var("HTA_BENCH_LARGE").is_ok() {
        sizes.extend([1_000_000, 10_000_000]);
    } else {
        println!("index/sharded: set HTA_BENCH_LARGE=1 for the 1M/10M points");
    }
    let nbits = 512usize;
    for &n in &sizes {
        let vecs = synthetic_vecs(n, nbits, 4, 8, 0xC3 ^ n as u64);
        let pairs: Vec<(u32, &KeywordVec)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v))
            .collect();
        group.bench_with_input(BenchmarkId::new("build-flat", n), &pairs, |b, p| {
            b.iter(|| {
                black_box(InvertedIndex::build(nbits, p, hta_index::par::default_threads()).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("build-sharded", n), &pairs, |b, p| {
            b.iter(|| black_box(ShardedIndex::build(nbits, p, 0).len()))
        });

        let flat = InvertedIndex::build(nbits, &pairs, hta_index::par::default_threads());
        let sharded = ShardedIndex::build(nbits, &pairs, 0);
        let workers = synthetic_vecs(16, nbits, 6, 10, 0xD4);
        group.bench_with_input(BenchmarkId::new("topk16-flat", n), &workers, |b, ws| {
            b.iter(|| {
                let mut hits = 0usize;
                for w in ws {
                    hits += flat.top_k(w, 16).len();
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("topk16-sharded", n), &workers, |b, ws| {
            b.iter(|| {
                let mut hits = 0usize;
                for w in ws {
                    hits += sharded.top_k(w, 16).len();
                }
                black_box(hits)
            })
        });
        // The whole point of sharding is that it is invisible to callers:
        // assert byte-identical retrieval on the bench corpus too.
        for w in &workers {
            assert_eq!(flat.top_k(w, 16), sharded.top_k(w, 16));
        }
    }
    group.finish();
}

/// The headline comparison: dense instance build + HTA-GRE solve over the
/// whole catalog vs sparse pool build + solve over the candidates. Dense is
/// Θ(|T|²) so it only runs at 1k; the printed objective ratio shows what
/// the sparse path trades for that asymptotic cut.
fn bench_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/dense-vs-sparse");
    group.sample_size(10);
    let n = 1_000usize;
    let xmax = 10usize;
    let corpus = corpus(n, 20, 0xB2);
    let solver = HtaGre::structured().without_flip();

    group.bench_with_input(BenchmarkId::new("dense", n), &corpus, |b, c| {
        b.iter(|| {
            let inst = Instance::new(c.tasks.clone(), c.workers.clone(), xmax).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            black_box(solver.solve(&inst, &mut rng).assignment.assigned_count())
        })
    });
    group.bench_with_input(BenchmarkId::new("sparse-topk16", n), &corpus, |b, c| {
        b.iter(|| {
            let index = build_index(c);
            let pool = CandidatePool::generate(&index, &c.workers, xmax, &PoolParams::with_k(16));
            let built = pool
                .build_instance(
                    &c.tasks,
                    &c.workers,
                    xmax,
                    hta_index::par::default_threads(),
                )
                .unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            black_box(
                solver
                    .solve(&built.instance, &mut rng)
                    .assignment
                    .assigned_count(),
            )
        })
    });
    group.finish();

    // One-shot objective comparison (Eq. 3 is evaluated on the assigned
    // tasks only, so the two objectives are directly comparable).
    let inst = Instance::new(corpus.tasks.clone(), corpus.workers.clone(), xmax).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let dense_out = solver.solve(&inst, &mut rng);
    let dense_obj = dense_out.assignment.objective(&inst);
    let index = build_index(&corpus);
    let pool = CandidatePool::generate(&index, &corpus.workers, xmax, &PoolParams::with_k(16));
    let built = pool
        .build_instance(&corpus.tasks, &corpus.workers, xmax, 1)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let sparse_out = solver.solve(&built.instance, &mut rng);
    let sparse_obj = sparse_out.assignment.objective(&built.instance);
    println!(
        "index/dense-vs-sparse objective: dense {dense_obj:.4}, sparse {sparse_obj:.4} \
         (ratio {:.3}, pool {} of {n} tasks)",
        sparse_obj / dense_obj,
        pool.len()
    );

    // Corrected baseline: the raw ratio above is NOT a retrieval win — both
    // sides run the same greedy, which optimizes a linear proxy and leaves
    // more on the table the more near-duplicate tasks it can see (the dense
    // instance), while the pool pre-concentrates high-value tasks. Polishing
    // both to a local optimum of Eq. 3 removes the proxy artifact and is the
    // comparison EXPERIMENTS.md reports alongside the raw one.
    let polished = LocalSearch::new(HtaGre::structured().without_flip(), 4);
    let mut rng = StdRng::seed_from_u64(3);
    let dense_ls = polished.solve(&inst, &mut rng).assignment.objective(&inst);
    let mut rng = StdRng::seed_from_u64(3);
    let sparse_ls = polished
        .solve(&built.instance, &mut rng)
        .assignment
        .objective(&built.instance);
    println!(
        "index/dense-vs-sparse objective (local-search polished): dense {dense_ls:.4}, \
         sparse {sparse_ls:.4} (ratio {:.3})",
        sparse_ls / dense_ls
    );
}

criterion_group!(
    benches,
    bench_index_scaling,
    bench_sharded,
    bench_dense_vs_sparse
);
criterion_main!(benches);
