//! Index-subsystem micro-benchmarks: inverted-index construction, top-k
//! retrieval, candidate-pool generation at catalog scale, and the headline
//! dense-vs-sparse assignment comparison (build + solve wall-clock and
//! objective ratio).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hta_core::prelude::*;
use hta_datagen::amt::{generate_exact, AmtConfig};
use hta_datagen::workers::{synthetic_workers, SyntheticWorkerConfig};
use hta_index::{CandidatePool, InvertedIndex, PoolParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Corpus {
    tasks: Vec<Task>,
    workers: Vec<Worker>,
    nbits: usize,
}

fn corpus(n_tasks: usize, n_workers: usize, seed: u64) -> Corpus {
    let amt = generate_exact(
        &AmtConfig {
            seed,
            ..AmtConfig::with_totals(n_tasks, (n_tasks / 10).max(1))
        },
        n_tasks,
    );
    let nbits = amt.space.len();
    let pool = synthetic_workers(
        nbits,
        &SyntheticWorkerConfig {
            n_workers,
            seed: seed ^ 0x77,
            ..Default::default()
        },
    );
    Corpus {
        tasks: amt.tasks.tasks().to_vec(),
        workers: pool.workers().to_vec(),
        nbits,
    }
}

fn build_index(c: &Corpus) -> InvertedIndex {
    let pairs: Vec<(u32, &KeywordVec)> = c.tasks.iter().map(|t| (t.id.0, &t.keywords)).collect();
    InvertedIndex::build(c.nbits, &pairs, hta_index::par::default_threads())
}

/// Index build, top-k query, and pool generation at 1k / 10k / 100k tasks.
fn bench_index_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/scaling");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let corpus = corpus(n, 20, 0xA1);
        group.bench_with_input(BenchmarkId::new("build", n), &corpus, |b, c| {
            b.iter(|| black_box(build_index(c).len()))
        });
        let index = build_index(&corpus);
        group.bench_with_input(BenchmarkId::new("top-k16", n), &corpus, |b, c| {
            b.iter(|| {
                let mut hits = 0usize;
                for w in &c.workers {
                    hits += index.top_k(&w.keywords, 16).len();
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("pool", n), &corpus, |b, c| {
            b.iter(|| {
                let pool = CandidatePool::generate(&index, &c.workers, 10, &PoolParams::with_k(16));
                black_box(pool.len())
            })
        });
    }
    group.finish();
}

/// The headline comparison: dense instance build + HTA-GRE solve over the
/// whole catalog vs sparse pool build + solve over the candidates. Dense is
/// Θ(|T|²) so it only runs at 1k; the printed objective ratio shows what
/// the sparse path trades for that asymptotic cut.
fn bench_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/dense-vs-sparse");
    group.sample_size(10);
    let n = 1_000usize;
    let xmax = 10usize;
    let corpus = corpus(n, 20, 0xB2);
    let solver = HtaGre::structured().without_flip();

    group.bench_with_input(BenchmarkId::new("dense", n), &corpus, |b, c| {
        b.iter(|| {
            let inst = Instance::new(c.tasks.clone(), c.workers.clone(), xmax).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            black_box(solver.solve(&inst, &mut rng).assignment.assigned_count())
        })
    });
    group.bench_with_input(BenchmarkId::new("sparse-topk16", n), &corpus, |b, c| {
        b.iter(|| {
            let index = build_index(c);
            let pool = CandidatePool::generate(&index, &c.workers, xmax, &PoolParams::with_k(16));
            let built = pool
                .build_instance(
                    &c.tasks,
                    &c.workers,
                    xmax,
                    hta_index::par::default_threads(),
                )
                .unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            black_box(
                solver
                    .solve(&built.instance, &mut rng)
                    .assignment
                    .assigned_count(),
            )
        })
    });
    group.finish();

    // One-shot objective comparison (Eq. 3 is evaluated on the assigned
    // tasks only, so the two objectives are directly comparable).
    let inst = Instance::new(corpus.tasks.clone(), corpus.workers.clone(), xmax).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let dense_out = solver.solve(&inst, &mut rng);
    let dense_obj = dense_out.assignment.objective(&inst);
    let index = build_index(&corpus);
    let pool = CandidatePool::generate(&index, &corpus.workers, xmax, &PoolParams::with_k(16));
    let built = pool
        .build_instance(&corpus.tasks, &corpus.workers, xmax, 1)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let sparse_out = solver.solve(&built.instance, &mut rng);
    let sparse_obj = sparse_out.assignment.objective(&built.instance);
    println!(
        "index/dense-vs-sparse objective: dense {dense_obj:.4}, sparse {sparse_obj:.4} \
         (ratio {:.3}, pool {} of {n} tasks)",
        sparse_obj / dense_obj,
        pool.len()
    );
}

criterion_group!(benches, bench_index_scaling, bench_dense_vs_sparse);
criterion_main!(benches);
