//! Criterion micro-benchmarks for the motivation model primitives: TD/TR
//! evaluation (Eqs. 1–3), Jaccard over packed keyword vectors, and the
//! adaptive weight estimator update.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hta_bench::build_instance;
use hta_core::adaptive::WeightEstimator;
use hta_core::metric::{Distance, Jaccard};
use hta_core::motivation::{motivation, normalized_gains};
use hta_core::{KeywordVec, Weights};

fn bench_jaccard(c: &mut Criterion) {
    let mut group = c.benchmark_group("motivation/jaccard");
    for &bits in &[64usize, 512, 4096] {
        let a = KeywordVec::from_indices(bits, &[0, bits / 3, bits / 2, bits - 1]);
        let b = KeywordVec::from_indices(bits, &[1, bits / 3, bits - 1]);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| black_box(Jaccard.dist(&a, &b)))
        });
    }
    group.finish();
}

fn bench_motivation_eval(c: &mut Criterion) {
    let inst = build_instance(500, 50, 10, 20, 0x40);
    let sets: Vec<Vec<usize>> = vec![(0..5).collect(), (0..20).collect(), (0..100).collect()];
    let mut group = c.benchmark_group("motivation/eq3");
    for set in &sets {
        group.bench_with_input(BenchmarkId::from_parameter(set.len()), set, |b, set| {
            b.iter(|| black_box(motivation(&inst, 0, set)))
        });
    }
    group.finish();
}

fn bench_adaptive_update(c: &mut Criterion) {
    let inst = build_instance(200, 20, 4, 20, 0x41);
    let completed: Vec<usize> = (0..10).collect();
    let remaining: Vec<usize> = (10..30).collect();
    c.bench_function("motivation/normalized-gains", |b| {
        b.iter(|| black_box(normalized_gains(&inst, 0, &completed, &remaining, 15)))
    });
    c.bench_function("motivation/estimator-update", |b| {
        b.iter(|| {
            let mut e = WeightEstimator::new(Weights::balanced());
            for i in 0..50 {
                e.observe_gains(Some((i % 10) as f64 / 10.0), Some(0.5));
            }
            black_box(e.estimate().alpha())
        })
    });
}

criterion_group!(
    benches,
    bench_jaccard,
    bench_motivation_eval,
    bench_adaptive_update
);
criterion_main!(benches);
