//! Criterion micro-benchmarks for the greedy diversity matching `M_B`
//! (Algorithm 1, line 2) — ablation 2 of DESIGN.md: greedy matching cost as
//! a function of task count and group degeneracy.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hta_bench::build_instance;
use hta_matching::{greedy_matching, WeightedEdge};

fn edges_of(inst: &hta_core::Instance) -> Vec<WeightedEdge> {
    let n = inst.n_tasks();
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            let w = inst.diversity(u, v);
            if w > 0.0 {
                edges.push(WeightedEdge::new(u as u32, v as u32, w));
            }
        }
    }
    edges
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/greedy");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let inst = build_instance(n, 100, 20, 10, 0xBE);
        let edges = edges_of(&inst);
        group.bench_with_input(BenchmarkId::new("sorted-greedy", n), &edges, |b, edges| {
            b.iter(|| black_box(greedy_matching(n, edges).total_weight()))
        });
    }
    group.finish();
}

fn bench_edge_materialization(c: &mut Criterion) {
    // The O(n²) diversity evaluation that feeds the matching.
    let mut group = c.benchmark_group("matching/edge-build");
    group.sample_size(10);
    for &groups in &[10usize, 1000] {
        let inst = build_instance(1000, groups, 20, 10, 0xBE);
        group.bench_with_input(
            BenchmarkId::new("jaccard-pairs", groups),
            &inst,
            |b, inst| b.iter(|| black_box(edges_of(inst).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_edge_materialization);
criterion_main!(benches);
