//! Criterion benchmark of the online platform: one full cohort of
//! concurrent 30-minute sessions per strategy — the unit of work behind
//! Figure 5, useful for tracking simulator-throughput regressions.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hta_crowd::{LiveWorker, Platform, PlatformConfig, PopulationConfig, Strategy};
use hta_datagen::crowdflower::{CrowdflowerCatalog, CrowdflowerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cohort(c: &mut Criterion) {
    let catalog = CrowdflowerCatalog::generate(&CrowdflowerConfig {
        n_tasks: 3000,
        ..Default::default()
    });
    let population = hta_crowd::population::generate(
        &catalog.space,
        &PopulationConfig {
            n_workers: 5,
            ..Default::default()
        },
    );
    let refs: Vec<&LiveWorker> = population.iter().collect();

    let mut group = c.benchmark_group("platform/cohort");
    group.sample_size(10);
    for strategy in [Strategy::HtaGre, Strategy::HtaGreRel, Strategy::Random] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut platform = Platform::new(&catalog, PlatformConfig::default());
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(platform.run_cohort(strategy, &refs, &mut rng).len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cohort);
criterion_main!(benches);
