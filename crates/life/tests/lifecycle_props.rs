//! Property tests for the lifecycle state machine and reputation model:
//! no operation sequence can produce an illegal transition (no
//! `Completed → Assigned` and friends), requeues never exceed the retry
//! budget, and every type round-trips bit-exactly through its
//! `StateSerialize` encoding after arbitrary histories.

use hta_core::state::{decode, encode};
use hta_life::{LifecycleBook, PriorityMix, Reputation, TaskLife, TaskPriority, TaskState};
use proptest::prelude::*;

/// Apply one randomly chosen lifecycle operation. Returns whether the
/// operation was accepted.
fn apply_op(life: &mut TaskLife, op: usize, minute: f64) -> bool {
    match op % 7 {
        0 => life.assign(minute, Some(3.0)).is_ok(),
        1 => life.assign(minute, None).is_ok(),
        2 => life.start().is_ok(),
        3 => life.submit().is_ok(),
        4 => life.release().is_ok(),
        5 => life.verify(op % 2 == 1).is_ok(),
        _ => life.expire().is_ok(),
    }
}

proptest! {
    /// Every accepted operation follows an edge of the state machine;
    /// every rejected operation leaves the task bit-identical.
    #[test]
    fn op_sequences_respect_the_state_machine(
        max_retries in 0u32..4,
        ops in proptest::collection::vec(0usize..7, 0..60),
    ) {
        let mut life = TaskLife::new(TaskPriority::Normal, max_retries);
        for (i, &op) in ops.iter().enumerate() {
            let before = life.clone();
            let accepted = apply_op(&mut life, op, i as f64);
            if accepted {
                let legal = before.state().can_transition(life.state())
                    || before.state() == life.state();
                prop_assert!(
                    legal,
                    "op {op} moved {} -> {} illegally",
                    before.state(),
                    life.state()
                );
            } else {
                prop_assert_eq!(&life, &before, "a rejected op mutated state");
            }
            // Terminal states absorb: nothing leaves them.
            if before.state().is_terminal() {
                prop_assert_eq!(life.state(), before.state());
            }
            // The retry budget is a hard bound, and a retry is only ever
            // consumed by a requeue back to Pending.
            prop_assert!(life.retries() <= life.max_retries());
            prop_assert!(life.retries() >= before.retries());
            if life.retries() > before.retries() {
                prop_assert_eq!(life.state(), TaskState::Pending);
            }
        }
    }

    /// Driving a task with endless bad answers exhausts exactly the budget
    /// and lands on Failed; endless timeouts land on Expired.
    #[test]
    fn requeues_stop_exactly_at_the_budget(max_retries in 0u32..6, timeout_pick in 0usize..2) {
        let timeout = timeout_pick == 1;
        let mut life = TaskLife::new(TaskPriority::Low, max_retries);
        let mut requeues = 0u32;
        loop {
            life.assign(0.0, Some(1.0)).unwrap();
            let outcome = if timeout {
                life.expire().unwrap()
            } else {
                life.start().unwrap();
                life.submit().unwrap();
                life.verify(false).unwrap()
            };
            match outcome {
                hta_life::LifeOutcome::Requeued => requeues += 1,
                _ => break,
            }
            prop_assert!(requeues <= max_retries);
        }
        prop_assert_eq!(requeues, max_retries);
        let expected = if timeout { TaskState::Expired } else { TaskState::Failed };
        prop_assert_eq!(life.state(), expected);
    }

    /// A book driven by an arbitrary op soup round-trips bit-exactly and
    /// keeps its counters consistent with its states.
    #[test]
    fn book_round_trips_after_arbitrary_history(
        n_tasks in 1usize..12,
        max_retries in 0u32..3,
        ops in proptest::collection::vec((0usize..12, 0usize..7), 0..80),
    ) {
        let mix = PriorityMix::new([1.0, 2.0, 1.0, 0.5]).unwrap();
        let mut book = LifecycleBook::new(n_tasks, &mix, max_retries);
        for (i, &(task, op)) in ops.iter().enumerate() {
            let task = task % n_tasks;
            let minute = i as f64;
            let _ = match op {
                0 => book.assign(task, minute, Some(2.0)).map(|_| ()),
                1 => book.assign(task, minute, None).map(|_| ()),
                2 => book.start(task).map(|_| ()),
                3 => book.submit(task).map(|_| ()),
                4 => book.release(task).map(|_| ()),
                5 => book.verify(task, i % 2 == 0).map(|_| ()),
                _ => book.expire(task).map(|_| ()),
            };
        }
        let bytes = encode(&book);
        let back: LifecycleBook = decode(&bytes).expect("decode");
        prop_assert_eq!(&back, &book);
        prop_assert_eq!(encode(&back), bytes, "re-encoding must be byte-identical");
    }

    /// Reputation stays in bounds under arbitrary outcome streams and
    /// round-trips bit-exactly.
    #[test]
    fn reputation_bounded_and_round_trips(
        outcomes in proptest::collection::vec(0usize..2, 0..200),
    ) {
        let mut rep = Reputation::new();
        for &o in &outcomes {
            rep.observe(o == 1);
            prop_assert!((0.0..=1.0).contains(&rep.score()));
            prop_assert!((0.0..=1.0).contains(&rep.pool_score()));
            prop_assert!((0.0..=2.0).contains(&rep.beta_scale()));
        }
        prop_assert_eq!(rep.observations() as usize, outcomes.len());
        let bytes = encode(&rep);
        let back: Reputation = decode(&bytes).expect("decode");
        prop_assert_eq!(back.score().to_bits(), rep.score().to_bits());
        prop_assert_eq!(encode(&back), bytes);
    }
}
