//! Priority tiers and the deterministic tier mix.
//!
//! Tiers are assigned to tasks by hashing the task index against a
//! cumulative distribution — deliberately *not* by drawing from the run's
//! RNG, so switching priorities on (or changing the mix) never shifts the
//! random streams that drive the behaviour model. That is what lets the
//! lifecycle layer default off with zero behavioural footprint.

use std::fmt;

/// Scheduling tier of a task. Higher tiers are served first and shed last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskPriority {
    /// Best-effort work: first to be shed under load.
    Low,
    /// The default tier.
    Normal,
    /// Latency-sensitive work.
    High,
    /// Never shed until the queue is completely full.
    Critical,
}

impl TaskPriority {
    /// All tiers, lowest first.
    pub const ALL: [TaskPriority; 4] = [
        TaskPriority::Low,
        TaskPriority::Normal,
        TaskPriority::High,
        TaskPriority::Critical,
    ];

    /// Dense rank, `0` (Low) through `3` (Critical).
    #[inline]
    pub fn rank(self) -> u8 {
        match self {
            TaskPriority::Low => 0,
            TaskPriority::Normal => 1,
            TaskPriority::High => 2,
            TaskPriority::Critical => 3,
        }
    }

    /// Inverse of [`rank`](Self::rank).
    pub fn from_rank(rank: u8) -> Option<Self> {
        Self::ALL.get(rank as usize).copied()
    }

    /// Parse a lowercase tier name (`low`/`normal`/`high`/`critical`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "low" => Some(TaskPriority::Low),
            "normal" => Some(TaskPriority::Normal),
            "high" => Some(TaskPriority::High),
            "critical" => Some(TaskPriority::Critical),
            _ => None,
        }
    }

    /// The lowercase tier name.
    pub fn label(self) -> &'static str {
        match self {
            TaskPriority::Low => "low",
            TaskPriority::Normal => "normal",
            TaskPriority::High => "high",
            TaskPriority::Critical => "critical",
        }
    }
}

impl fmt::Display for TaskPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Relative tier weights `(low, normal, high, critical)`; any non-negative
/// values with a positive sum. [`pick`](Self::pick) maps task indices onto
/// tiers in these proportions, deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityMix {
    weights: [f64; 4],
}

impl Default for PriorityMix {
    /// Everything [`TaskPriority::Normal`].
    fn default() -> Self {
        Self {
            weights: [0.0, 1.0, 0.0, 0.0],
        }
    }
}

impl PriorityMix {
    /// Build from tier weights, lowest tier first.
    pub fn new(weights: [f64; 4]) -> Result<Self, String> {
        for (w, tier) in weights.iter().zip(TaskPriority::ALL) {
            if !w.is_finite() || *w < 0.0 {
                return Err(format!(
                    "priority weight for {tier} must be finite and >= 0"
                ));
            }
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err("priority weights must sum to a positive value".into());
        }
        Ok(Self { weights })
    }

    /// Parse `low,normal,high,critical` comma-separated weights.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 4 {
            return Err(format!(
                "priority mix needs 4 comma-separated weights (low,normal,high,critical), got {}",
                parts.len()
            ));
        }
        let mut weights = [0.0; 4];
        for (slot, part) in weights.iter_mut().zip(&parts) {
            *slot = part
                .trim()
                .parse()
                .map_err(|_| format!("priority mix: cannot parse weight '{part}'"))?;
        }
        Self::new(weights)
    }

    /// The raw tier weights, lowest tier first.
    pub fn weights(&self) -> [f64; 4] {
        self.weights
    }

    /// Deterministic tier for a task index: a splitmix64 hash of the index
    /// mapped onto the cumulative weight distribution. Independent of every
    /// RNG stream in the system.
    pub fn pick(&self, task_index: usize) -> TaskPriority {
        // splitmix64 finalizer — well-mixed bits from a sequential index.
        let mut z = (task_index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // in [0, 1)
        let total: f64 = self.weights.iter().sum();
        let mut acc = 0.0;
        for (w, tier) in self.weights.iter().zip(TaskPriority::ALL) {
            acc += w / total;
            if u < acc {
                return tier;
            }
        }
        TaskPriority::Critical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_round_trips() {
        for tier in TaskPriority::ALL {
            assert_eq!(TaskPriority::from_rank(tier.rank()), Some(tier));
            assert_eq!(TaskPriority::parse(tier.label()), Some(tier));
        }
        assert_eq!(TaskPriority::from_rank(4), None);
        assert_eq!(TaskPriority::parse("urgent"), None);
    }

    #[test]
    fn mix_rejects_bad_weights() {
        assert!(PriorityMix::new([0.0, 0.0, 0.0, 0.0]).is_err());
        assert!(PriorityMix::new([-1.0, 1.0, 0.0, 0.0]).is_err());
        assert!(PriorityMix::new([f64::NAN, 1.0, 0.0, 0.0]).is_err());
        assert!(PriorityMix::parse("1,2,3").is_err());
        assert!(PriorityMix::parse("1,2,x,4").is_err());
    }

    #[test]
    fn default_mix_is_all_normal() {
        let mix = PriorityMix::default();
        for i in 0..500 {
            assert_eq!(mix.pick(i), TaskPriority::Normal);
        }
    }

    #[test]
    fn pick_is_deterministic_and_roughly_proportional() {
        let mix = PriorityMix::parse("1,1,1,1").unwrap();
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let tier = mix.pick(i);
            assert_eq!(mix.pick(i), tier, "pick must be a pure function");
            counts[tier.rank() as usize] += 1;
        }
        for (c, tier) in counts.iter().zip(TaskPriority::ALL) {
            assert!(
                (800..1200).contains(c),
                "tier {tier} got {c}/4000 at equal weights"
            );
        }
    }

    #[test]
    fn degenerate_mix_assigns_single_tier() {
        let mix = PriorityMix::parse("0,0,0,5").unwrap();
        for i in 0..200 {
            assert_eq!(mix.pick(i), TaskPriority::Critical);
        }
    }
}
