//! The per-task lifecycle state machine and the catalog-wide ledger.
//!
//! ```text
//!            ┌──────────────── release (worker quit / display refresh) ───┐
//!            ▼                                                            │
//!  Pending ──assign──▶ Assigned ──start──▶ Computing ──submit──▶ Verifying
//!    ▲                     │                   │                     │
//!    │                     └──── expire ───────┴───── expire ────────┤
//!    │                          (deadline passed, retries left)      │
//!    ├──────────────◀── requeue-on-timeout / requeue-on-bad-answer ──┤
//!    │                                                               │
//!    │     retries exhausted: expire ──▶ Expired    verify(fail) ────┼──▶ Failed
//!    │                                                verify(pass) ──┴──▶ Completed
//! ```
//!
//! Every transition is a fallible method: an illegal edge (e.g.
//! `Completed → Assigned`) is a [`LifecycleError`], never silent state
//! corruption, and requeues are bounded by the task's retry budget.

use std::fmt;

use crate::priority::{PriorityMix, TaskPriority};

/// Where a task is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Open: available for assignment.
    Pending,
    /// Shown to a worker (on a display) but not yet worked on.
    Assigned,
    /// A worker is actively producing an answer.
    Computing,
    /// An answer was submitted and awaits quality verification.
    Verifying,
    /// Terminal: the answer passed verification.
    Completed,
    /// Terminal: the answer failed verification and retries are exhausted.
    Failed,
    /// Terminal: the deadline passed and retries are exhausted.
    Expired,
}

impl TaskState {
    /// All states, in tag order.
    pub const ALL: [TaskState; 7] = [
        TaskState::Pending,
        TaskState::Assigned,
        TaskState::Computing,
        TaskState::Verifying,
        TaskState::Completed,
        TaskState::Failed,
        TaskState::Expired,
    ];

    /// Dense encoding tag.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            TaskState::Pending => 0,
            TaskState::Assigned => 1,
            TaskState::Computing => 2,
            TaskState::Verifying => 3,
            TaskState::Completed => 4,
            TaskState::Failed => 5,
            TaskState::Expired => 6,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }

    /// The lowercase state name.
    pub fn label(self) -> &'static str {
        match self {
            TaskState::Pending => "pending",
            TaskState::Assigned => "assigned",
            TaskState::Computing => "computing",
            TaskState::Verifying => "verifying",
            TaskState::Completed => "completed",
            TaskState::Failed => "failed",
            TaskState::Expired => "expired",
        }
    }

    /// True for the three absorbing states.
    #[inline]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Completed | TaskState::Failed | TaskState::Expired
        )
    }

    /// The machine's legality relation: is `self → to` an edge of the
    /// diagram above? (Requeue edges land on `Pending`.)
    pub fn can_transition(self, to: TaskState) -> bool {
        use TaskState::*;
        match (self, to) {
            (Pending, Assigned) => true,
            (Assigned, Computing) => true,
            (Computing, Verifying) => true,
            // Requeue / release edges back to the open pool.
            (Assigned | Computing | Verifying, Pending) => true,
            // Timeouts with no retries left, from any in-flight state.
            (Assigned | Computing | Verifying, Expired) => true,
            // Verification verdicts.
            (Verifying, Completed | Failed) => true,
            _ => false,
        }
    }
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An illegal lifecycle operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleError {
    /// The requested edge does not exist in the state machine.
    IllegalTransition {
        /// State the task was in.
        from: TaskState,
        /// State the operation tried to reach.
        to: TaskState,
    },
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IllegalTransition { from, to } => {
                write!(f, "illegal lifecycle transition {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for LifecycleError {}

/// What a verification or expiry decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifeOutcome {
    /// The answer passed; the task is done.
    Completed,
    /// The task went back to `Pending` for another attempt.
    Requeued,
    /// Retries exhausted on a bad answer.
    Failed,
    /// Retries exhausted on a missed deadline.
    Expired,
}

/// The lifecycle of a single task: state, tier, deadline, retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskLife {
    state: TaskState,
    priority: TaskPriority,
    /// Absolute deadline (simulation minute); set when assigned.
    deadline_minute: Option<f64>,
    retries: u32,
    max_retries: u32,
}

impl TaskLife {
    /// A fresh `Pending` task with a retry budget.
    pub fn new(priority: TaskPriority, max_retries: u32) -> Self {
        Self {
            state: TaskState::Pending,
            priority,
            deadline_minute: None,
            retries: 0,
            max_retries,
        }
    }

    /// Rebuild from serialized parts (crate-internal: decode validation).
    pub(crate) fn from_parts(
        state: TaskState,
        priority: TaskPriority,
        deadline_minute: Option<f64>,
        retries: u32,
        max_retries: u32,
    ) -> Self {
        Self {
            state,
            priority,
            deadline_minute,
            retries,
            max_retries,
        }
    }

    /// Current state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// The task's tier.
    pub fn priority(&self) -> TaskPriority {
        self.priority
    }

    /// Absolute deadline, if one is armed.
    pub fn deadline_minute(&self) -> Option<f64> {
        self.deadline_minute
    }

    /// Requeues consumed so far.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The retry budget.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// True once the deadline (if any) has passed.
    pub fn overdue(&self, now_minute: f64) -> bool {
        self.deadline_minute.is_some_and(|d| now_minute > d)
    }

    fn step(&mut self, to: TaskState) -> Result<(), LifecycleError> {
        if !self.state.can_transition(to) {
            return Err(LifecycleError::IllegalTransition {
                from: self.state,
                to,
            });
        }
        self.state = to;
        if to.is_terminal() {
            // A finished task has no deadline left to miss.
            self.deadline_minute = None;
        }
        Ok(())
    }

    /// `Pending → Assigned`, arming the deadline `now + budget` minutes out.
    pub fn assign(&mut self, now_minute: f64, budget: Option<f64>) -> Result<(), LifecycleError> {
        self.step(TaskState::Assigned)?;
        self.deadline_minute = budget.map(|b| now_minute + b);
        Ok(())
    }

    /// `Assigned → Computing`: the worker picked this task off the display.
    pub fn start(&mut self) -> Result<(), LifecycleError> {
        self.step(TaskState::Computing)
    }

    /// `Computing → Verifying`: an answer was submitted.
    pub fn submit(&mut self) -> Result<(), LifecycleError> {
        self.step(TaskState::Verifying)
    }

    /// `Assigned/Computing → Pending` without consuming a retry: the worker
    /// quit or the display was refreshed — not the task's fault.
    pub fn release(&mut self) -> Result<(), LifecycleError> {
        match self.state {
            TaskState::Assigned | TaskState::Computing => {
                self.state = TaskState::Pending;
                self.deadline_minute = None;
                Ok(())
            }
            from => Err(LifecycleError::IllegalTransition {
                from,
                to: TaskState::Pending,
            }),
        }
    }

    /// Requeue if the budget allows, else land on `terminal`.
    fn retry_or(&mut self, terminal: TaskState) -> Result<LifeOutcome, LifecycleError> {
        if self.retries < self.max_retries {
            self.step(TaskState::Pending)?;
            self.retries += 1;
            self.deadline_minute = None;
            Ok(LifeOutcome::Requeued)
        } else {
            self.step(terminal)?;
            Ok(match terminal {
                TaskState::Failed => LifeOutcome::Failed,
                _ => LifeOutcome::Expired,
            })
        }
    }

    /// Verification verdict on a `Verifying` task: pass completes it, fail
    /// requeues (bounded) or fails it.
    pub fn verify(&mut self, pass: bool) -> Result<LifeOutcome, LifecycleError> {
        if self.state != TaskState::Verifying {
            return Err(LifecycleError::IllegalTransition {
                from: self.state,
                to: if pass {
                    TaskState::Completed
                } else {
                    TaskState::Failed
                },
            });
        }
        if pass {
            self.step(TaskState::Completed)?;
            Ok(LifeOutcome::Completed)
        } else {
            self.retry_or(TaskState::Failed)
        }
    }

    /// Deadline passed on an in-flight task: requeue (bounded) or expire.
    pub fn expire(&mut self) -> Result<LifeOutcome, LifecycleError> {
        match self.state {
            TaskState::Assigned | TaskState::Computing | TaskState::Verifying => {
                self.retry_or(TaskState::Expired)
            }
            from => Err(LifecycleError::IllegalTransition {
                from,
                to: TaskState::Expired,
            }),
        }
    }
}

/// Totals the simulator reports per arm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifeSummary {
    /// Tasks whose answers passed verification.
    pub completed: u64,
    /// Tasks that exhausted retries on bad answers.
    pub failed: u64,
    /// Tasks that exhausted retries on missed deadlines.
    pub expired: u64,
    /// Requeues caused by missed deadlines.
    pub requeued_timeout: u64,
    /// Requeues caused by rejected answers.
    pub requeued_bad_answer: u64,
}

/// Lifecycle ledger over a whole task catalog, indexed by task index.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleBook {
    tasks: Vec<TaskLife>,
    summary: LifeSummary,
}

impl LifecycleBook {
    /// A book of `n` fresh `Pending` tasks, tiered by `mix`.
    pub fn new(n: usize, mix: &PriorityMix, max_retries: u32) -> Self {
        Self {
            tasks: (0..n)
                .map(|i| TaskLife::new(mix.pick(i), max_retries))
                .collect(),
            summary: LifeSummary::default(),
        }
    }

    /// Rebuild from serialized parts (crate-internal: decode validation).
    pub(crate) fn from_parts(tasks: Vec<TaskLife>, summary: LifeSummary) -> Self {
        Self { tasks, summary }
    }

    /// Number of tracked tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when tracking no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The life of one task.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> &TaskLife {
        &self.tasks[index]
    }

    /// All task lives, in index order.
    pub fn tasks(&self) -> &[TaskLife] {
        &self.tasks
    }

    /// The requeue/terminal totals so far.
    pub fn summary(&self) -> LifeSummary {
        self.summary
    }

    /// Assign task `index` at `now`, arming an optional deadline budget.
    pub fn assign(
        &mut self,
        index: usize,
        now_minute: f64,
        budget: Option<f64>,
    ) -> Result<(), LifecycleError> {
        self.tasks[index].assign(now_minute, budget)
    }

    /// The worker started computing task `index`.
    pub fn start(&mut self, index: usize) -> Result<(), LifecycleError> {
        self.tasks[index].start()
    }

    /// An answer for task `index` was submitted.
    pub fn submit(&mut self, index: usize) -> Result<(), LifecycleError> {
        self.tasks[index].submit()
    }

    /// Task `index` went back to the pool without consuming a retry.
    pub fn release(&mut self, index: usize) -> Result<(), LifecycleError> {
        self.tasks[index].release()
    }

    /// Verification verdict for task `index`; updates the summary.
    pub fn verify(&mut self, index: usize, pass: bool) -> Result<LifeOutcome, LifecycleError> {
        let outcome = self.tasks[index].verify(pass)?;
        match outcome {
            LifeOutcome::Completed => self.summary.completed += 1,
            LifeOutcome::Requeued => self.summary.requeued_bad_answer += 1,
            LifeOutcome::Failed => self.summary.failed += 1,
            LifeOutcome::Expired => {}
        }
        Ok(outcome)
    }

    /// Deadline passed for in-flight task `index`; updates the summary.
    pub fn expire(&mut self, index: usize) -> Result<LifeOutcome, LifecycleError> {
        let outcome = self.tasks[index].expire()?;
        match outcome {
            LifeOutcome::Requeued => self.summary.requeued_timeout += 1,
            LifeOutcome::Expired => self.summary.expired += 1,
            _ => {}
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(max_retries: u32) -> TaskLife {
        TaskLife::new(TaskPriority::Normal, max_retries)
    }

    #[test]
    fn happy_path_reaches_completed() {
        let mut t = fresh(2);
        t.assign(0.0, Some(5.0)).unwrap();
        assert_eq!(t.deadline_minute(), Some(5.0));
        t.start().unwrap();
        t.submit().unwrap();
        assert_eq!(t.verify(true).unwrap(), LifeOutcome::Completed);
        assert!(t.state().is_terminal());
        // Terminal states absorb everything.
        assert!(t.assign(1.0, None).is_err());
        assert!(t.verify(true).is_err());
        assert!(t.expire().is_err());
    }

    #[test]
    fn bad_answers_requeue_until_the_budget_runs_out() {
        let mut t = fresh(2);
        for round in 0..2 {
            t.assign(0.0, None).unwrap();
            t.start().unwrap();
            t.submit().unwrap();
            assert_eq!(t.verify(false).unwrap(), LifeOutcome::Requeued);
            assert_eq!(t.state(), TaskState::Pending);
            assert_eq!(t.retries(), round + 1);
        }
        t.assign(0.0, None).unwrap();
        t.start().unwrap();
        t.submit().unwrap();
        assert_eq!(t.verify(false).unwrap(), LifeOutcome::Failed);
        assert_eq!(t.state(), TaskState::Failed);
        assert_eq!(t.retries(), 2, "the failing attempt consumes no retry");
    }

    #[test]
    fn timeouts_requeue_then_expire() {
        let mut t = fresh(1);
        t.assign(0.0, Some(3.0)).unwrap();
        assert!(!t.overdue(3.0));
        assert!(t.overdue(3.1));
        assert_eq!(t.expire().unwrap(), LifeOutcome::Requeued);
        assert_eq!(t.deadline_minute(), None, "requeue disarms the deadline");
        t.assign(10.0, Some(3.0)).unwrap();
        assert_eq!(t.deadline_minute(), Some(13.0));
        t.start().unwrap();
        assert_eq!(t.expire().unwrap(), LifeOutcome::Expired);
        assert_eq!(t.state(), TaskState::Expired);
    }

    #[test]
    fn release_returns_to_pending_without_a_retry() {
        let mut t = fresh(0);
        t.assign(0.0, Some(1.0)).unwrap();
        t.release().unwrap();
        assert_eq!(t.state(), TaskState::Pending);
        assert_eq!(t.retries(), 0);
        t.assign(0.0, None).unwrap();
        t.start().unwrap();
        t.release().unwrap();
        assert_eq!(t.state(), TaskState::Pending);
        // But a Verifying task cannot be released — it must be verified.
        t.assign(0.0, None).unwrap();
        t.start().unwrap();
        t.submit().unwrap();
        assert!(t.release().is_err());
    }

    #[test]
    fn illegal_edges_are_rejected_and_leave_state_unchanged() {
        let mut t = fresh(3);
        assert!(t.start().is_err());
        assert!(t.submit().is_err());
        assert!(t.verify(true).is_err());
        assert!(t.expire().is_err());
        assert_eq!(t.state(), TaskState::Pending);
        assert_eq!(t.retries(), 0);
        let err = t.verify(false).unwrap_err();
        assert!(err.to_string().contains("illegal lifecycle transition"));
    }

    #[test]
    fn book_tracks_summary_counters() {
        let mix = PriorityMix::default();
        let mut book = LifecycleBook::new(3, &mix, 1);
        // Task 0: pass.
        book.assign(0, 0.0, None).unwrap();
        book.start(0).unwrap();
        book.submit(0).unwrap();
        book.verify(0, true).unwrap();
        // Task 1: fail, requeue, fail again -> Failed.
        book.assign(1, 0.0, None).unwrap();
        book.start(1).unwrap();
        book.submit(1).unwrap();
        assert_eq!(book.verify(1, false).unwrap(), LifeOutcome::Requeued);
        book.assign(1, 1.0, None).unwrap();
        book.start(1).unwrap();
        book.submit(1).unwrap();
        assert_eq!(book.verify(1, false).unwrap(), LifeOutcome::Failed);
        // Task 2: timeout with no retries -> Expired.
        let mut book2 = LifecycleBook::new(1, &mix, 0);
        book2.assign(0, 0.0, Some(1.0)).unwrap();
        assert_eq!(book2.expire(0).unwrap(), LifeOutcome::Expired);

        let s = book.summary();
        assert_eq!(
            (s.completed, s.failed, s.requeued_bad_answer),
            (1, 1, 1),
            "{s:?}"
        );
        assert_eq!(book2.summary().expired, 1);
    }
}
