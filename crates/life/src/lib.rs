//! # hta-life — task lifecycle, priority tiers, and worker reputation
//!
//! The paper's platform model assumes every assigned task is completed
//! instantly and perfectly. Real crowdsourcing markets are messier: answers
//! fail verification, workers abandon tasks, deadlines pass, and platforms
//! rank workers by track record (the quality-control mechanisms catalogued
//! by Hettiachchi et al.'s survey). This crate adds that marketplace layer
//! as a standalone, std-only subsystem the simulator and the serving stack
//! share:
//!
//! * [`TaskPriority`] / [`PriorityMix`] — four priority tiers and a
//!   deterministic (seed-free) assignment of tiers to a task catalog, so
//!   enabling priorities never perturbs existing RNG streams.
//! * [`TaskState`] / [`TaskLife`] — the per-task state machine
//!   `Pending → Assigned → Computing → Verifying → Completed/Failed/Expired`
//!   with per-task deadlines and bounded-retry requeue paths for both
//!   timeouts and rejected answers.
//! * [`LifecycleBook`] — the catalog-wide ledger of task lives plus the
//!   requeue/terminal counters the simulator reports.
//! * [`Reputation`] — an EWMA over verification outcomes with a
//!   confidence-shrunk composite score (the `PoolScore` idiom from compute
//!   marketplaces) that scales the relevance term of Eq. 3 via
//!   [`hta_core::Weights::scale_beta`].
//!
//! Everything implements [`hta_core::StateSerialize`], so lifecycle and
//! reputation state ride in checkpoints and `--restore` stays
//! byte-identical.

#![warn(missing_docs)]

pub mod priority;
pub mod reputation;
pub mod task;

mod serial;

pub use priority::{PriorityMix, TaskPriority};
pub use reputation::Reputation;
pub use task::{LifeOutcome, LifeSummary, LifecycleBook, LifecycleError, TaskLife, TaskState};
