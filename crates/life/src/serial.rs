//! [`StateSerialize`] impls: lifecycle and reputation state rides in run
//! checkpoints and server snapshots, so every type here round-trips
//! bit-exactly and validates on decode (a corrupt blob is an error, never a
//! structurally impossible value).

use hta_core::{StateDecodeError, StateReader, StateSerialize};

use crate::priority::{PriorityMix, TaskPriority};
use crate::reputation::Reputation;
use crate::task::{LifeSummary, LifecycleBook, TaskLife, TaskState};

impl StateSerialize for TaskPriority {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.rank().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let rank = u8::read_state(r)?;
        TaskPriority::from_rank(rank)
            .ok_or_else(|| StateDecodeError::Invalid(format!("priority rank {rank}")))
    }
}

impl StateSerialize for TaskState {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.tag().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let tag = u8::read_state(r)?;
        TaskState::from_tag(tag)
            .ok_or_else(|| StateDecodeError::Invalid(format!("task state tag {tag}")))
    }
}

impl StateSerialize for PriorityMix {
    fn write_state(&self, out: &mut Vec<u8>) {
        for w in self.weights() {
            w.write_state(out);
        }
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let mut weights = [0.0; 4];
        for w in &mut weights {
            *w = f64::read_state(r)?;
        }
        PriorityMix::new(weights).map_err(StateDecodeError::Invalid)
    }
}

impl StateSerialize for TaskLife {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.state().write_state(out);
        self.priority().write_state(out);
        self.deadline_minute().write_state(out);
        self.retries().write_state(out);
        self.max_retries().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let state = TaskState::read_state(r)?;
        let priority = TaskPriority::read_state(r)?;
        let deadline_minute = Option::<f64>::read_state(r)?;
        let retries = u32::read_state(r)?;
        let max_retries = u32::read_state(r)?;
        if let Some(d) = deadline_minute {
            if !d.is_finite() || d < 0.0 {
                return Err(StateDecodeError::Invalid(format!("deadline minute {d}")));
            }
        }
        if retries > max_retries {
            return Err(StateDecodeError::Invalid(format!(
                "retries {retries} exceed the budget {max_retries}"
            )));
        }
        if state.is_terminal() && deadline_minute.is_some() {
            return Err(StateDecodeError::Invalid(format!(
                "terminal state {state} with an armed deadline"
            )));
        }
        Ok(TaskLife::from_parts(
            state,
            priority,
            deadline_minute,
            retries,
            max_retries,
        ))
    }
}

impl StateSerialize for LifeSummary {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.completed.write_state(out);
        self.failed.write_state(out);
        self.expired.write_state(out);
        self.requeued_timeout.write_state(out);
        self.requeued_bad_answer.write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        Ok(LifeSummary {
            completed: u64::read_state(r)?,
            failed: u64::read_state(r)?,
            expired: u64::read_state(r)?,
            requeued_timeout: u64::read_state(r)?,
            requeued_bad_answer: u64::read_state(r)?,
        })
    }
}

impl StateSerialize for LifecycleBook {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.tasks().to_vec().write_state(out);
        self.summary().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let tasks = Vec::<TaskLife>::read_state(r)?;
        let summary = LifeSummary::read_state(r)?;
        let terminal = |f: fn(TaskState) -> bool| tasks.iter().filter(|t| f(t.state())).count();
        // Terminal counters are derivable from the states; enforce the link
        // so a bit flip in either representation is caught.
        if terminal(|s| s == TaskState::Completed) as u64 != summary.completed
            || terminal(|s| s == TaskState::Failed) as u64 != summary.failed
            || terminal(|s| s == TaskState::Expired) as u64 != summary.expired
        {
            return Err(StateDecodeError::Invalid(
                "lifecycle summary disagrees with task states".into(),
            ));
        }
        let total_retries: u64 = tasks.iter().map(|t| u64::from(t.retries())).sum();
        if summary.requeued_timeout + summary.requeued_bad_answer != total_retries {
            return Err(StateDecodeError::Invalid(
                "requeue counters disagree with per-task retry counts".into(),
            ));
        }
        Ok(LifecycleBook::from_parts(tasks, summary))
    }
}

impl StateSerialize for Reputation {
    fn write_state(&self, out: &mut Vec<u8>) {
        self.score().write_state(out);
        self.lambda().write_state(out);
        self.observations().write_state(out);
        self.passes().write_state(out);
    }
    fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateDecodeError> {
        let score = f64::read_state(r)?;
        let lambda = f64::read_state(r)?;
        let observations = u64::read_state(r)?;
        let passes = u64::read_state(r)?;
        if !(0.0..=1.0).contains(&score) {
            return Err(StateDecodeError::Invalid(format!(
                "reputation score {score} outside [0, 1]"
            )));
        }
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(StateDecodeError::Invalid(format!(
                "reputation lambda {lambda} outside (0, 1]"
            )));
        }
        if passes > observations {
            return Err(StateDecodeError::Invalid(format!(
                "reputation passes {passes} exceed observations {observations}"
            )));
        }
        Ok(Reputation::from_parts(score, lambda, observations, passes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_core::state::{decode, encode};

    #[test]
    fn lifecycle_types_round_trip() {
        for tier in TaskPriority::ALL {
            assert_eq!(decode::<TaskPriority>(&encode(&tier)).unwrap(), tier);
        }
        for state in TaskState::ALL {
            assert_eq!(decode::<TaskState>(&encode(&state)).unwrap(), state);
        }
        let mix = PriorityMix::parse("1,5,2,0.5").unwrap();
        assert_eq!(decode::<PriorityMix>(&encode(&mix)).unwrap(), mix);

        let mut life = TaskLife::new(TaskPriority::High, 3);
        life.assign(2.0, Some(7.5)).unwrap();
        life.start().unwrap();
        assert_eq!(decode::<TaskLife>(&encode(&life)).unwrap(), life);
    }

    #[test]
    fn book_round_trips_with_history() {
        let mix = PriorityMix::parse("1,1,1,1").unwrap();
        let mut book = LifecycleBook::new(8, &mix, 2);
        book.assign(0, 0.0, Some(4.0)).unwrap();
        book.start(0).unwrap();
        book.submit(0).unwrap();
        book.verify(0, false).unwrap();
        book.assign(1, 0.0, None).unwrap();
        book.expire(1).unwrap();
        book.assign(2, 0.0, None).unwrap();
        book.start(2).unwrap();
        book.submit(2).unwrap();
        book.verify(2, true).unwrap();
        assert_eq!(decode::<LifecycleBook>(&encode(&book)).unwrap(), book);
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        // Bad state tag.
        assert!(decode::<TaskState>(&[9]).is_err());
        // retries > max_retries.
        let mut bytes = Vec::new();
        TaskState::Pending.write_state(&mut bytes);
        TaskPriority::Low.write_state(&mut bytes);
        None::<f64>.write_state(&mut bytes);
        5u32.write_state(&mut bytes);
        1u32.write_state(&mut bytes);
        assert!(decode::<TaskLife>(&bytes).is_err());
        // Summary disagreeing with states.
        let book = LifecycleBook::new(2, &PriorityMix::default(), 1);
        let mut bytes = encode(&book);
        let n = bytes.len();
        bytes[n - 1] = 1; // claim one bad-answer requeue that never happened
        assert!(decode::<LifecycleBook>(&bytes).is_err());
        // Reputation with passes > observations.
        let mut bytes = Vec::new();
        0.5f64.write_state(&mut bytes);
        0.2f64.write_state(&mut bytes);
        1u64.write_state(&mut bytes);
        2u64.write_state(&mut bytes);
        assert!(decode::<Reputation>(&bytes).is_err());
    }

    #[test]
    fn reputation_round_trips_bit_exactly() {
        let mut rep = Reputation::new();
        for i in 0..13 {
            rep.observe(i % 3 != 0);
        }
        let back = decode::<Reputation>(&encode(&rep)).unwrap();
        assert_eq!(back.score().to_bits(), rep.score().to_bits());
        assert_eq!(back.observations(), rep.observations());
        assert_eq!(back.passes(), rep.passes());
    }
}
