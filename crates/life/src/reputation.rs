//! Worker reputation: an EWMA over verification outcomes plus a
//! confidence-shrunk composite score.
//!
//! The shape follows compute-marketplace pool scores: a fast-moving
//! exponentially weighted average of pass/fail outcomes, shrunk toward the
//! neutral prior `0.5` while the worker has little history, so one early
//! failure does not bury a newcomer and one early pass does not crown them.
//! [`beta_scale`](Reputation::beta_scale) maps the composite onto a factor
//! for the relevance weight `β` of Eq. 3 (via
//! [`hta_core::Weights::scale_beta`]): proven workers get *more* relevance
//! weight (the platform trusts their stated interests and routes matching
//! work to them), unproven or failing workers drift toward exploration.

/// EWMA smoothing: how much one new outcome moves the score.
pub const DEFAULT_LAMBDA: f64 = 0.2;

/// Shrinkage pseudo-count: observations needed before history dominates the
/// neutral prior in the composite score.
pub const CONFIDENCE_K: f64 = 5.0;

/// A worker's verification track record.
#[derive(Debug, Clone, PartialEq)]
pub struct Reputation {
    score: f64,
    lambda: f64,
    observations: u64,
    passes: u64,
}

impl Default for Reputation {
    fn default() -> Self {
        Self::new()
    }
}

impl Reputation {
    /// A fresh, neutral reputation (score `0.5`, no history).
    pub fn new() -> Self {
        Self::with_lambda(DEFAULT_LAMBDA)
    }

    /// A fresh reputation with an explicit EWMA smoothing factor.
    ///
    /// # Panics
    /// Panics unless `lambda` lies in `(0, 1]`.
    pub fn with_lambda(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "EWMA lambda must lie in (0, 1], got {lambda}"
        );
        Self {
            score: 0.5,
            lambda,
            observations: 0,
            passes: 0,
        }
    }

    /// Rebuild from serialized parts (crate-internal: decode validation).
    pub(crate) fn from_parts(score: f64, lambda: f64, observations: u64, passes: u64) -> Self {
        Self {
            score,
            lambda,
            observations,
            passes,
        }
    }

    /// Fold in one verification outcome:
    /// `score ← (1 − λ)·score + λ·outcome`.
    pub fn observe(&mut self, pass: bool) {
        let outcome = if pass { 1.0 } else { 0.0 };
        self.score = (1.0 - self.lambda) * self.score + self.lambda * outcome;
        self.observations += 1;
        self.passes += u64::from(pass);
    }

    /// The raw EWMA score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The EWMA smoothing factor.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Verification outcomes observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Outcomes that passed.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Lifetime pass fraction (`0.5` with no history).
    pub fn pass_rate(&self) -> f64 {
        if self.observations == 0 {
            0.5
        } else {
            self.passes as f64 / self.observations as f64
        }
    }

    /// The composite "pool score": the EWMA shrunk toward the neutral prior
    /// `0.5` by the pseudo-count [`CONFIDENCE_K`] —
    /// `(n·score + K·0.5) / (n + K)` with `n` the observation count. Always
    /// in `[0, 1]`; exactly `0.5` with no history.
    pub fn pool_score(&self) -> f64 {
        let n = self.observations as f64;
        (n * self.score + CONFIDENCE_K * 0.5) / (n + CONFIDENCE_K)
    }

    /// The factor applied to the relevance weight `β` of Eq. 3:
    /// `2 · pool_score`, in `[0, 2]` and exactly `1.0` (a no-op) for a
    /// worker with no history.
    pub fn beta_scale(&self) -> f64 {
        2.0 * self.pool_score()
    }

    /// The composite pool score with a price term folded in:
    /// `pool_score · (1 + weight·(1 − cost))`, clamped to `[0, 1]`.
    ///
    /// `cost` is the worker's wage relative to the market base rate
    /// (`1.0` = base; above = expensive, below = cheap) and `weight` is the
    /// platform's price sensitivity. Cheap workers gain score, expensive
    /// workers lose it, and two exact neutralities hold: `weight == 0.0`
    /// returns [`pool_score`](Self::pool_score) bit-for-bit (the multiplier
    /// is exactly `1.0`), as does `cost == 1.0` at any weight.
    pub fn priced_pool_score(&self, cost: f64, weight: f64) -> f64 {
        (self.pool_score() * (1.0 + weight * (1.0 - cost))).clamp(0.0, 1.0)
    }

    /// [`beta_scale`](Self::beta_scale) with the price term:
    /// `2 · priced_pool_score`, in `[0, 2]`, and bit-identical to the
    /// unpriced scale when `weight` is `0.0`.
    pub fn priced_beta_scale(&self, cost: f64, weight: f64) -> f64 {
        2.0 * self.priced_pool_score(cost, weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_reputation_is_neutral() {
        let r = Reputation::new();
        assert_eq!(r.score(), 0.5);
        assert_eq!(r.pool_score(), 0.5);
        assert_eq!(r.beta_scale(), 1.0);
        assert_eq!(r.pass_rate(), 0.5);
    }

    #[test]
    fn ewma_moves_toward_outcomes_and_stays_bounded() {
        let mut r = Reputation::new();
        for _ in 0..50 {
            r.observe(true);
            assert!((0.0..=1.0).contains(&r.score()));
        }
        assert!(r.score() > 0.99, "score {} after 50 passes", r.score());
        assert!(r.beta_scale() > 1.8);
        for _ in 0..50 {
            r.observe(false);
            assert!((0.0..=1.0).contains(&r.score()));
        }
        assert!(r.score() < 0.01);
        assert!(r.beta_scale() < 0.2);
        assert_eq!(r.observations(), 100);
        assert_eq!(r.passes(), 50);
        assert_eq!(r.pass_rate(), 0.5);
    }

    #[test]
    fn shrinkage_dampens_early_evidence() {
        let mut r = Reputation::new();
        r.observe(false);
        // One failure: the EWMA drops to 0.4 but the composite barely moves.
        assert!((r.score() - 0.4).abs() < 1e-12);
        assert!(r.pool_score() > 0.45, "pool {}", r.pool_score());
        // With history, the composite tracks the EWMA closely.
        for _ in 0..100 {
            r.observe(false);
        }
        assert!(r.pool_score() < 0.05);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn zero_lambda_is_rejected() {
        let _ = Reputation::with_lambda(0.0);
    }

    #[test]
    fn price_term_is_bit_neutral_at_zero_weight_or_unit_cost() {
        let mut r = Reputation::new();
        for i in 0..13 {
            r.observe(i % 3 != 0);
            for cost in [0.25, 0.8, 1.0, 1.7, 4.0] {
                assert_eq!(
                    r.priced_pool_score(cost, 0.0).to_bits(),
                    r.pool_score().to_bits(),
                    "weight 0 must be exactly neutral at cost {cost}"
                );
                assert_eq!(
                    r.priced_beta_scale(cost, 0.0).to_bits(),
                    r.beta_scale().to_bits()
                );
            }
            for weight in [0.1, 0.5, 1.0, 3.0] {
                assert_eq!(
                    r.priced_pool_score(1.0, weight).to_bits(),
                    r.pool_score().to_bits(),
                    "unit cost must be exactly neutral at weight {weight}"
                );
            }
        }
    }

    #[test]
    fn price_term_rewards_cheap_and_punishes_expensive_workers() {
        let mut r = Reputation::new();
        for _ in 0..10 {
            r.observe(true);
        }
        let base = r.pool_score();
        assert!(r.priced_pool_score(0.5, 0.4) > base, "cheap gains");
        assert!(r.priced_pool_score(2.0, 0.4) < base, "expensive loses");
        // Monotone in cost at fixed weight, and always bounded.
        let mut prev = f64::INFINITY;
        for cost in [0.0, 0.5, 1.0, 2.0, 5.0, 100.0] {
            let s = r.priced_pool_score(cost, 0.4);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
            assert!(s <= prev, "not monotone at cost {cost}");
            prev = s;
        }
        assert_eq!(r.priced_pool_score(100.0, 1.0), 0.0, "clamped at 0");
        assert!((0.0..=2.0).contains(&r.priced_beta_scale(3.0, 0.7)));
    }
}
