//! Length-prefixed binary frames for the replication channel.
//!
//! HTTP is the wrong shape for delta push — the reactor's request parser
//! discards bodies and the primary *initiates* sends — so replication runs
//! over a dedicated TCP connection speaking a trivially parseable frame
//! format:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HTAC"
//! 4       1     frame type
//! 5       4     payload length (u32 LE, capped)
//! 9       n     payload
//! 9+n     4     CRC-32/IEEE over bytes [4 .. 9+n)  (type, length, payload)
//! ```
//!
//! The CRC makes a frame self-verifying independent of the payload's own
//! integrity story (snapshot and delta payloads are *also* CRC'd
//! containers, so state bytes end up double-covered on the wire).

use hta_snapshot::crc32;
use std::io::{self, Read, Write};

/// Magic prefix of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"HTAC";

/// Refuse frames larger than this (a corrupt length would otherwise ask us
/// to allocate absurd buffers).
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// A replica's first message after `last_epoch`: the epoch it already
/// holds, `0` for "nothing" (forces a full snapshot).
pub const FRAME_HELLO: u8 = 1;
/// Primary → replica: a full snapshot. Payload: `u64 LE epoch` + bytes.
pub const FRAME_FULL: u8 = 2;
/// Primary → replica: an encoded [`hta_snapshot::SnapshotDelta`] frame
/// (epochs ride inside the delta).
pub const FRAME_DELTA: u8 = 3;

/// One parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// One of the `FRAME_*` constants (unknown values are delivered, so the
    /// protocol can grow without breaking old peers mid-handshake).
    pub kind: u8,
    /// The opaque payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serialize to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.payload.len() <= MAX_FRAME_PAYLOAD, "frame too large");
        let mut out = Vec::with_capacity(13 + self.payload.len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(self.kind);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Write the frame to a stream (single `write_all`, then flush).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_bytes())?;
        w.flush()
    }

    /// Read one frame off a stream. Blocks until complete. A closed
    /// connection before the first byte yields `UnexpectedEof`; corrupt
    /// magic, length, or CRC yield `InvalidData`.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut head = [0u8; 9];
        r.read_exact(&mut head)?;
        if head[..4] != FRAME_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad frame magic",
            ));
        }
        let kind = head[4];
        let len = u32::from_le_bytes(head[5..9].try_into().unwrap()) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame payload length {len} exceeds the cap"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        let mut crc_bytes = [0u8; 4];
        r.read_exact(&mut crc_bytes)?;
        let mut covered = Vec::with_capacity(5 + len);
        covered.extend_from_slice(&head[4..]);
        covered.extend_from_slice(&payload);
        if crc32(&covered) != u32::from_le_bytes(crc_bytes) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
        Ok(Self { kind, payload })
    }

    /// Build a `HELLO` frame.
    pub fn hello(last_epoch: u64) -> Self {
        Self {
            kind: FRAME_HELLO,
            payload: last_epoch.to_le_bytes().to_vec(),
        }
    }

    /// Build a `FULL` frame.
    pub fn full(epoch: u64, snapshot_bytes: &[u8]) -> Self {
        let mut payload = Vec::with_capacity(8 + snapshot_bytes.len());
        payload.extend_from_slice(&epoch.to_le_bytes());
        payload.extend_from_slice(snapshot_bytes);
        Self {
            kind: FRAME_FULL,
            payload,
        }
    }

    /// Build a `DELTA` frame around an encoded delta.
    pub fn delta(delta_bytes: Vec<u8>) -> Self {
        Self {
            kind: FRAME_DELTA,
            payload: delta_bytes,
        }
    }

    /// Decode a `HELLO` payload.
    pub fn parse_hello(&self) -> io::Result<u64> {
        if self.kind != FRAME_HELLO || self.payload.len() != 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a hello frame",
            ));
        }
        Ok(u64::from_le_bytes(self.payload[..].try_into().unwrap()))
    }

    /// Decode a `FULL` payload into `(epoch, snapshot bytes)`.
    pub fn parse_full(&self) -> io::Result<(u64, &[u8])> {
        if self.kind != FRAME_FULL || self.payload.len() < 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a full-snapshot frame",
            ));
        }
        let epoch = u64::from_le_bytes(self.payload[..8].try_into().unwrap());
        Ok((epoch, &self.payload[8..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_over_a_byte_stream() {
        let frames = [
            Frame::hello(42),
            Frame::full(7, &[1, 2, 3, 0, 255]),
            Frame::delta(vec![9; 100]),
            Frame {
                kind: 200,
                payload: vec![],
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            f.write_to(&mut wire).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut r).unwrap(), f);
        }
        assert!(Frame::read_from(&mut r).is_err(), "stream is drained");
    }

    #[test]
    fn hello_and_full_accessors() {
        assert_eq!(Frame::hello(9).parse_hello().unwrap(), 9);
        let f = Frame::full(3, b"abc");
        assert_eq!(f.parse_full().unwrap(), (3, &b"abc"[..]));
        assert!(f.parse_hello().is_err());
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let wire = Frame::delta(vec![1, 2, 3]).to_bytes();
        let mut copy = wire.clone();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert!(
                    Frame::read_from(&mut &copy[..]).is_err(),
                    "flip at byte {i} bit {bit} parsed"
                );
                copy[i] ^= 1 << bit;
            }
        }
        assert_eq!(copy, wire);
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        let mut wire = Frame::hello(0).to_bytes();
        wire[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Frame::read_from(&mut &wire[..]).is_err());
    }
}
