//! Replica-side replication: connect, catch up, apply, persist.
//!
//! A follower holds `(epoch, snapshot bytes)` and keeps it converged with
//! the primary by applying the frames the hub streams at it. The epoch tag
//! is the safety rail: a delta whose `base_epoch` is not the follower's
//! current epoch is refused locally and the follower re-handshakes, which
//! makes the hub ship either the covering delta chain or a full snapshot —
//! a killed-and-relaunched replica converges to byte-identical state from
//! whatever it last persisted.

use crate::frame::{Frame, FRAME_DELTA, FRAME_FULL};
use hta_snapshot::{DeltaError, Snapshot, SnapshotBuilder, SnapshotDelta, SnapshotError};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Container kind for the persisted `(epoch, state)` journal.
pub const JOURNAL_KIND: &str = "hta-replica-journal";

/// One state update decoded off the wire.
#[derive(Debug)]
pub enum Update {
    /// Replace local state wholesale.
    Full {
        /// The epoch of the shipped snapshot.
        epoch: u64,
        /// The full snapshot bytes.
        bytes: Vec<u8>,
    },
    /// Apply a section diff to the current state.
    Delta(SnapshotDelta),
}

/// A live replication connection (replica side).
pub struct Follower {
    reader: BufReader<TcpStream>,
}

impl Follower {
    /// Connect to a primary's replication listener and introduce ourselves
    /// as holding `last_epoch` (0 = nothing, forces a full snapshot).
    pub fn connect(addr: &str, last_epoch: u64) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Frame::hello(last_epoch).write_to(&mut &stream)?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Bound how long [`Self::next`] blocks waiting for a frame.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Block for the next update. `UnexpectedEof` means the primary went
    /// away; `WouldBlock`/`TimedOut` mean the read timeout elapsed with the
    /// stream idle (no update published) — both are normal lifecycle, not
    /// corruption.
    pub fn next_update(&mut self) -> io::Result<Update> {
        loop {
            let frame = Frame::read_from(&mut self.reader)?;
            match frame.kind {
                FRAME_FULL => {
                    let (epoch, bytes) = frame.parse_full()?;
                    return Ok(Update::Full {
                        epoch,
                        bytes: bytes.to_vec(),
                    });
                }
                FRAME_DELTA => {
                    let delta = SnapshotDelta::from_bytes(&frame.payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    return Ok(Update::Delta(delta));
                }
                // Unknown frame kinds are skipped so the protocol can grow.
                _ => continue,
            }
        }
    }
}

/// The replica's local `(epoch, bytes)` pair, optionally persisted to disk
/// after every accepted update so a SIGKILL'd replica rejoins from where it
/// died instead of from scratch.
pub struct ReplicaState {
    /// Epoch of `bytes` (0 = nothing held yet).
    pub epoch: u64,
    /// The current full snapshot bytes (empty at epoch 0).
    pub bytes: Vec<u8>,
    journal: Option<PathBuf>,
}

impl ReplicaState {
    /// An empty state (epoch 0) with no persistence.
    pub fn empty() -> Self {
        Self {
            epoch: 0,
            bytes: Vec::new(),
            journal: None,
        }
    }

    /// Load from a journal file if it exists and verifies; otherwise start
    /// empty. Either way, subsequent updates persist to `path` atomically.
    pub fn with_journal(path: &Path) -> Self {
        let mut state = Self::empty();
        state.journal = Some(path.to_path_buf());
        if let Ok(snap) = Snapshot::load(path) {
            if snap.kind() == JOURNAL_KIND {
                if let (Ok(epoch_bytes), Ok(state_bytes)) =
                    (snap.section("epoch"), snap.section("state"))
                {
                    if epoch_bytes.len() == 8 && Snapshot::from_bytes(state_bytes).is_ok() {
                        state.epoch = u64::from_le_bytes(epoch_bytes.try_into().unwrap());
                        state.bytes = state_bytes.to_vec();
                    }
                }
            }
        }
        state
    }

    /// Apply one update. `Ok(true)` means the state changed (re-derive any
    /// in-memory view); a [`DeltaError::BaseMismatch`] or epoch gap means
    /// the caller must re-handshake from its current epoch.
    pub fn apply(&mut self, update: Update) -> Result<bool, DeltaError> {
        match update {
            Update::Full { epoch, bytes } => {
                // Validate before adopting: a replica never holds bytes it
                // could not re-serve.
                Snapshot::from_bytes(&bytes)?;
                self.epoch = epoch;
                self.bytes = bytes;
            }
            Update::Delta(delta) => {
                if delta.base_epoch != self.epoch {
                    return Err(DeltaError::Snapshot(SnapshotError::Corrupt(format!(
                        "delta base epoch {} does not match held epoch {}",
                        delta.base_epoch, self.epoch
                    ))));
                }
                self.bytes = delta.apply(&self.bytes)?;
                self.epoch = delta.new_epoch;
            }
        }
        self.persist();
        Ok(true)
    }

    fn persist(&self) {
        if let Some(path) = &self.journal {
            let _ = SnapshotBuilder::new(JOURNAL_KIND)
                .section("epoch", self.epoch.to_le_bytes().to_vec())
                .section("state", self.bytes.clone())
                .write_atomic(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::ReplicationHub;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::thread;

    fn snap(v: u8) -> Vec<u8> {
        SnapshotBuilder::new("t")
            .section("a", vec![v; 8])
            .section("b", (0..v).collect())
            .to_bytes()
    }

    /// End-to-end over a real socket: publish on the hub, watch the
    /// follower converge; kill the connection, mutate, reconnect with the
    /// held epoch, converge again via the retained deltas.
    #[test]
    fn follower_converges_and_rejoins() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hub = Arc::new(ReplicationHub::new(16));
        {
            let hub = Arc::clone(&hub);
            thread::spawn(move || hub.serve(listener));
        }
        hub.publish(snap(1));
        hub.publish(snap(2));

        let dir = std::env::temp_dir().join(format!("hta-follower-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("replica.journal");

        let mut state = ReplicaState::with_journal(&journal);
        let mut follower = Follower::connect(&addr, state.epoch).unwrap();
        state.apply(follower.next_update().unwrap()).unwrap();
        assert_eq!(state.epoch, 2);
        assert_eq!(state.bytes, snap(2));

        // Live update flows as a delta.
        hub.publish(snap(3));
        state.apply(follower.next_update().unwrap()).unwrap();
        assert_eq!((state.epoch, &state.bytes), (3, &snap(3)));

        // "SIGKILL": drop the connection and the in-memory state, mutate
        // twice, then relaunch from the journal.
        drop(follower);
        drop(state);
        hub.publish(snap(4));
        hub.publish(snap(5));
        let mut state = ReplicaState::with_journal(&journal);
        assert_eq!(state.epoch, 3, "journal survived the kill");
        let mut follower = Follower::connect(&addr, state.epoch).unwrap();
        // Catch-up arrives as the two retained deltas.
        state.apply(follower.next_update().unwrap()).unwrap();
        state.apply(follower.next_update().unwrap()).unwrap();
        assert_eq!((state.epoch, &state.bytes), (5, &snap(5)));

        hub.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_gap_is_refused_locally() {
        let base = snap(1);
        let target = snap(2);
        let delta = SnapshotDelta::compute(&base, &target, 5, 6).unwrap();
        let mut state = ReplicaState::empty();
        state
            .apply(Update::Full {
                epoch: 3,
                bytes: base,
            })
            .unwrap();
        assert!(state.apply(Update::Delta(delta)).is_err());
        assert_eq!(state.epoch, 3, "state unchanged after the refusal");
    }

    #[test]
    fn corrupt_journal_starts_empty() {
        let dir = std::env::temp_dir().join(format!("hta-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.journal");
        std::fs::write(&path, b"not a container").unwrap();
        let state = ReplicaState::with_journal(&path);
        assert_eq!(state.epoch, 0);
        assert!(state.bytes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
