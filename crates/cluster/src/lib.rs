//! # hta-cluster — primary/replica replication and shard coordination
//!
//! A std-only serving layer that composes two existing guarantees into a
//! multi-process story:
//!
//! * `hta-snapshot` serializes the full platform state **deterministically**
//!   (same state → same bytes), and [`hta_snapshot::SnapshotDelta`] diffs
//!   two snapshots at section granularity;
//! * the platform state restores from those bytes and re-serializes to the
//!   **same** bytes (round-trip identity, proptested in `hta-server`).
//!
//! So replication is just: the **primary** publishes its serialized state
//! to a [`ReplicationHub`] after every mutating operation; the hub diffs
//! consecutive snapshots into epoch-tagged deltas and streams them (as
//! CRC'd [`frame`]s over plain TCP) to **followers**, which splice them
//! into their held bytes and rebuild their in-memory state. A follower's
//! answers to read traffic (`/stats`, top-k, candidate generation) are then
//! byte-identical to the primary's at the same epoch — not approximately
//! consistent, *identical*, because both sides hold the same bytes.
//!
//! Catch-up falls out of the same mechanism: the hub retains a window of
//! deltas, a rejoining follower presents the epoch it last persisted
//! ([`ReplicaState::with_journal`]), and the hub ships either the covering
//! delta chain or one full snapshot. Kill a replica, relaunch it, and it
//! converges to byte-identical state.
//!
//! **Shard workers** are followers with one extra duty: each owns the slice
//! of the task catalog selected by a [`ShardSpec`] and serves per-worker
//! top-k over a shard-local index. The primary merges per-shard lists into
//! the exact global top-k (score bits are carried as `u64`, so nothing is
//! lost to text formatting) and runs the one joint solve itself —
//! assignment decisions never leave the primary, mirroring the
//! centralized-decision/distributed-retrieval split in the online
//! assignment literature.

#![warn(missing_docs)]

pub mod follower;
pub mod frame;
pub mod hub;

pub use follower::{Follower, ReplicaState, Update, JOURNAL_KIND};
pub use frame::{Frame, FRAME_DELTA, FRAME_FULL, FRAME_HELLO, MAX_FRAME_PAYLOAD};
pub use hub::{ReplicationHub, DEFAULT_RETAIN};

use hta_net::client::{read_response, request_bytes, request_bytes_with_body, ClientResponse};
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Which slice of the task catalog a shard worker owns: task `t` belongs to
/// shard `index` iff `t % count == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This worker's shard number, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl ShardSpec {
    /// A spec for shard `index` of `count`.
    ///
    /// # Panics
    /// Panics when `count == 0` or `index >= count`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        Self { index, count }
    }

    /// Whether this shard owns task `task_id`.
    pub fn owns(&self, task_id: u32) -> bool {
        task_id % self.count == self.index
    }
}

/// One blocking HTTP exchange with a cluster node: connect, send a
/// body-less request, read the response. Used by the launcher, the chaos
/// harness, and tests; per-call connection, no pooling.
pub fn http_get(addr: &str, target: &str, timeout: Duration) -> io::Result<ClientResponse> {
    http_exchange(addr, &request_bytes("GET", target, false), timeout)
}

/// Like [`http_get`] but a `POST` carrying a binary-safe body.
pub fn http_post(
    addr: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    http_exchange(
        addr,
        &request_bytes_with_body("POST", target, false, body),
        timeout,
    )
}

fn http_exchange(addr: &str, request: &[u8], timeout: Duration) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    (&stream).write_all(request)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_partitions_exactly() {
        let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3)).collect();
        for task in 0..100u32 {
            let owners = shards.iter().filter(|s| s.owns(task)).count();
            assert_eq!(owners, 1, "task {task} owned by exactly one shard");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = ShardSpec::new(3, 3);
    }
}
