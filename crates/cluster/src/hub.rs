//! The primary's replication hub: epoch-tagged snapshot publishing and the
//! per-peer catch-up protocol.
//!
//! The hub owns the authoritative *serialized* state: the last published
//! snapshot bytes, the current epoch, and a bounded window of retained
//! deltas (epoch `e` → `e+1`). Publishing is linearized under one lock, so
//! the delta chain is gapless by construction; peers that fall outside the
//! retained window — or that present an epoch the chain cannot reach — get
//! a full snapshot instead. That is the whole catch-up protocol:
//!
//! 1. peer sends `HELLO{last_epoch}`;
//! 2. hub replies with the retained deltas `last_epoch → current` when the
//!    chain covers that span, else one `FULL{current}`;
//! 3. thereafter every `publish` pushes the new delta (or a full, if the
//!    peer ever lags out of the window) as it happens.
//!
//! Slow peers never block `publish`: each peer has its own writer thread
//! that re-reads the hub state after every send, so a peer that missed
//! three epochs while writing simply gets the three retained deltas (or a
//! full) on its next pass.

use crate::frame::Frame;
use hta_snapshot::SnapshotDelta;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// How many deltas the hub retains for catch-up by default. A rejoining
/// replica within this many epochs of the head avoids a full-snapshot
/// transfer.
pub const DEFAULT_RETAIN: usize = 256;

struct HubInner {
    /// Epoch of `bytes`; 0 means nothing has been published yet.
    epoch: u64,
    /// Last published snapshot bytes (authoritative serialized state).
    bytes: Arc<Vec<u8>>,
    /// Retained deltas: element `i` carries `base_epoch` → `base_epoch+1`,
    /// bases strictly consecutive, back base == `epoch - 1`.
    deltas: VecDeque<(u64, Arc<Vec<u8>>)>,
    /// Set by [`ReplicationHub::shutdown`]; peer threads exit on wake.
    closed: bool,
}

/// Primary-side replication state. Cheap to share (`Arc`), safe to publish
/// from any thread.
pub struct ReplicationHub {
    inner: Mutex<HubInner>,
    bump: Condvar,
    retain: usize,
    peers: AtomicUsize,
}

impl ReplicationHub {
    /// A hub retaining up to `retain` deltas for catch-up.
    pub fn new(retain: usize) -> Self {
        Self {
            inner: Mutex::new(HubInner {
                epoch: 0,
                bytes: Arc::new(Vec::new()),
                deltas: VecDeque::new(),
                closed: false,
            }),
            bump: Condvar::new(),
            retain: retain.max(1),
            peers: AtomicUsize::new(0),
        }
    }

    /// Publish a new authoritative snapshot. Returns the epoch the bytes
    /// are now published at. Identical bytes are deduplicated (the epoch
    /// does not advance), so callers can publish after *every* mutating
    /// operation without chattering no-op deltas at the replicas.
    pub fn publish(&self, bytes: Vec<u8>) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        if inner.epoch > 0 && *inner.bytes == bytes {
            return inner.epoch;
        }
        if inner.epoch > 0 {
            match SnapshotDelta::compute(&inner.bytes, &bytes, inner.epoch, inner.epoch + 1) {
                Ok(delta) => {
                    let base = inner.epoch;
                    inner.deltas.push_back((base, Arc::new(delta.to_bytes())));
                    while inner.deltas.len() > self.retain {
                        inner.deltas.pop_front();
                    }
                }
                // Un-diffable bytes (shouldn't happen with container-valid
                // input): drop the chain; peers fall back to fulls.
                Err(_) => inner.deltas.clear(),
            }
        }
        inner.epoch += 1;
        inner.bytes = Arc::new(bytes);
        let epoch = inner.epoch;
        drop(inner);
        self.bump.notify_all();
        epoch
    }

    /// The current epoch (0 before the first publish).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap().epoch
    }

    /// The last published snapshot, if any.
    pub fn snapshot(&self) -> Option<(u64, Arc<Vec<u8>>)> {
        let inner = self.inner.lock().unwrap();
        (inner.epoch > 0).then(|| (inner.epoch, Arc::clone(&inner.bytes)))
    }

    /// Number of peer connections currently attached.
    pub fn peer_count(&self) -> usize {
        self.peers.load(Ordering::Relaxed)
    }

    /// Wake every peer thread and make them exit after their current send.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().closed = true;
        self.bump.notify_all();
    }

    /// Accept replication peers on `listener` forever (until the hub shuts
    /// down). One writer thread per peer. Call from a dedicated thread.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.inner.lock().unwrap().closed {
                return;
            }
            let Ok(stream) = stream else { continue };
            let hub = Arc::clone(self);
            thread::spawn(move || {
                hub.peers.fetch_add(1, Ordering::Relaxed);
                let _ = hub.peer_loop(stream);
                hub.peers.fetch_sub(1, Ordering::Relaxed);
            });
        }
    }

    /// What a peer at `peer_epoch` should be sent to reach `current`:
    /// the contiguous retained deltas when they cover the span, else a
    /// full snapshot.
    fn plan(inner: &HubInner, peer_epoch: u64) -> Plan {
        if peer_epoch == inner.epoch {
            return Plan::UpToDate;
        }
        if peer_epoch > 0 && peer_epoch < inner.epoch {
            if let Some(&(front_base, _)) = inner.deltas.front() {
                if peer_epoch >= front_base {
                    let skip = (peer_epoch - front_base) as usize;
                    return Plan::Deltas(
                        inner
                            .deltas
                            .iter()
                            .skip(skip)
                            .map(|(_, d)| Arc::clone(d))
                            .collect(),
                    );
                }
            }
        }
        Plan::Full(inner.epoch, Arc::clone(&inner.bytes))
    }

    fn peer_loop(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        let mut peer_epoch = Frame::read_from(&mut reader)?.parse_hello()?;
        loop {
            let plan = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if inner.closed {
                        return Ok(());
                    }
                    match Self::plan(&inner, peer_epoch) {
                        Plan::UpToDate => inner = self.bump.wait(inner).unwrap(),
                        plan => break plan,
                    }
                }
            };
            match plan {
                Plan::UpToDate => unreachable!(),
                Plan::Full(epoch, bytes) => {
                    Frame::full(epoch, &bytes).write_to(&mut writer)?;
                    peer_epoch = epoch;
                }
                Plan::Deltas(deltas) => {
                    for d in &deltas {
                        Frame::delta(d.to_vec()).write_to(&mut writer)?;
                        peer_epoch += 1;
                    }
                }
            }
        }
    }
}

enum Plan {
    UpToDate,
    Full(u64, Arc<Vec<u8>>),
    Deltas(Vec<Arc<Vec<u8>>>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_snapshot::SnapshotBuilder;

    fn snap(v: u8) -> Vec<u8> {
        SnapshotBuilder::new("t")
            .section("a", vec![v; 4])
            .section("b", vec![1, 2, 3])
            .to_bytes()
    }

    #[test]
    fn publish_dedupes_and_retains() {
        let hub = ReplicationHub::new(2);
        assert_eq!(hub.epoch(), 0);
        assert!(hub.snapshot().is_none());
        assert_eq!(hub.publish(snap(1)), 1);
        assert_eq!(hub.publish(snap(1)), 1, "identical bytes do not advance");
        assert_eq!(hub.publish(snap(2)), 2);
        assert_eq!(hub.publish(snap(3)), 3);
        assert_eq!(hub.publish(snap(4)), 4);
        let inner = hub.inner.lock().unwrap();
        assert_eq!(inner.deltas.len(), 2, "retention cap holds");
        assert_eq!(inner.deltas.front().unwrap().0, 2);
        assert_eq!(inner.deltas.back().unwrap().0, 3);
    }

    #[test]
    fn plan_picks_deltas_inside_the_window_and_full_outside() {
        let hub = ReplicationHub::new(8);
        for v in 1..=5 {
            hub.publish(snap(v));
        }
        let inner = hub.inner.lock().unwrap();
        assert!(matches!(ReplicationHub::plan(&inner, 5), Plan::UpToDate));
        match ReplicationHub::plan(&inner, 3) {
            Plan::Deltas(d) => assert_eq!(d.len(), 2),
            _ => panic!("expected deltas"),
        }
        // Epoch 0 (nothing held) and unknown epochs get a full.
        assert!(matches!(ReplicationHub::plan(&inner, 0), Plan::Full(5, _)));
        assert!(matches!(ReplicationHub::plan(&inner, 99), Plan::Full(5, _)));
    }

    #[test]
    fn chain_from_hub_replays_to_head_bytes() {
        let hub = ReplicationHub::new(16);
        for v in 1..=6 {
            hub.publish(snap(v));
        }
        // Replay the retained chain from epoch 1 by hand.
        let inner = hub.inner.lock().unwrap();
        let mut bytes = snap(1);
        for (base, wire) in &inner.deltas {
            let d = SnapshotDelta::from_bytes(wire).unwrap();
            assert_eq!(d.base_epoch, *base);
            bytes = d.apply(&bytes).unwrap();
        }
        assert_eq!(&bytes, &**inner.bytes);
    }
}
