//! Std-only shim for the subset of the `criterion` API this workspace
//! uses, so `cargo bench` works with the offline registry set.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! adaptive batches until the target measurement time is spent; the
//! reported figure is the median of the per-batch means. No statistical
//! regression analysis, plots, or baselines — just stable wall-clock
//! numbers on stdout, enough for before/after comparisons within one
//! machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    /// Target time to spend measuring each benchmark.
    measurement_time: Duration,
    /// Filter from the command line (`cargo bench -- <substr>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // flags like `--bench` arrive from cargo itself and are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            measurement_time: Duration::from_millis(600),
            filter,
        }
    }
}

impl Criterion {
    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 100,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = name.to_owned();
        if self.matches(&id) {
            run_one(&id, self.measurement_time, &mut f);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Compatibility knob; this shim scales measurement time with it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored (plots/throughput are not implemented).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark `f` over `input` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.matches(&full) {
            // Small declared sample sizes signal an expensive benchmark:
            // shrink the measurement budget proportionally (floor 200 ms).
            let budget = self
                .criterion
                .measurement_time
                .mul_f64((self.sample_size as f64 / 100.0).clamp(0.3, 1.0));
            run_one(&full, budget, &mut |b| f(b, input));
        }
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion.measurement_time, &mut f);
        }
        self
    }

    /// End the group (marker only; numbers print as they complete).
    pub fn finish(self) {}
}

/// A benchmark identifier: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Iterations the measurement loop asks for in this batch.
    iters: u64,
    /// Wall-clock spent in the routine for this batch.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this batch's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Hand the batch's iteration count to `routine`, which times the
    /// measured region itself and returns the total elapsed duration —
    /// upstream criterion's escape hatch for excluding per-iteration setup
    /// (state flips, churn application) from the measurement.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }
}

fn run_one(id: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: one iteration to estimate cost and fault in caches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20 batches within the budget.
    let batch_time = budget / 20;
    let iters_per_batch = (batch_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

    let mut samples: Vec<f64> = Vec::new();
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline || samples.len() < 3 {
        let mut b = Bencher {
            iters: iters_per_batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters_per_batch as f64);
        if samples.len() >= 200 {
            break;
        }
    }
    samples.sort_by(|a, z| a.total_cmp(z));
    let median = samples[samples.len() / 2];
    println!("{id:<60} time: [{}]", format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

mod macros {
    /// Bundle benchmark functions into a runnable group.
    #[macro_export]
    macro_rules! criterion_group {
        ($group:ident, $($target:path),+ $(,)?) => {
            pub fn $group() {
                let mut criterion = $crate::Criterion::default();
                $( $target(&mut criterion); )+
            }
        };
        (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
            pub fn $group() {
                let mut criterion = $config;
                $( $target(&mut criterion); )+
            }
        };
    }

    /// Emit `main` running the given groups.
    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                $( $group(); )+
            }
        };
    }
}
