//! Random operations on slices.

use crate::{Rng, RngExt};

/// Shuffling and random element selection on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
