//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**.
///
/// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12), but the
/// workspace only relies on *determinism under a fixed seed*, never on a
/// specific stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// The generator's internal xoshiro256** state words.
    ///
    /// Together with [`StdRng::from_state`] this pins down the exact stream
    /// position, so a checkpointed run can resume mid-stream and produce the
    /// same draws as an uninterrupted one.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator at an exact stream position captured by
    /// [`StdRng::state`].
    ///
    /// An all-zero state is a fixed point of xoshiro and cannot be produced
    /// by [`StdRng::state`] (seeding nudges it away); it is nudged here too
    /// so the constructor never yields a degenerate generator.
    #[inline]
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

/// A small fast generator; alias of [`StdRng`] in this shim.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(0x5E59);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_nudged() {
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.state(), [0; 4]);
        // Must actually generate (an all-zero xoshiro state is stuck at 0).
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
