//! Std-only shim for the subset of the `rand` crate API this workspace
//! uses, so the build works with the offline registry set (see DESIGN.md
//! §5: the registry is restricted; everything must be self-contained).
//!
//! Provided surface:
//!
//! * [`Rng`] — object-safe core trait (`next_u32` / `next_u64` / `fill_bytes`)
//! * [`RngExt`] — blanket extension: `random`, `random_range`, `random_bool`
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`
//! * [`rngs::StdRng`] — xoshiro256** seeded through SplitMix64
//! * [`seq::SliceRandom`] — `shuffle` / `choose`
//!
//! The generator is deterministic for a given seed, which is all the
//! experiments, property tests and platform services rely on. It is NOT
//! cryptographically secure.

pub mod rngs;
pub mod seq;

mod distr;

pub use distr::{SampleRange, StandardUniform};

/// Object-safe random-number-generator core. `&mut dyn Rng` is used
/// throughout the solver APIs, so this trait carries only concrete methods;
/// the generic conveniences live on [`RngExt`].
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generic conveniences over any [`Rng`] (including `dyn Rng`).
pub trait RngExt: Rng {
    /// A uniformly random value of `T` (for `f64`/`f32`: uniform in `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `p` is in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via SplitMix64 key expansion (matching the
    /// ergonomics of `rand::SeedableRng::seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seeds the main generator and backs `seed_from_u64`.
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let n = rng.random_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.random_range(2..=4u8);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn super::Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
    }
}
