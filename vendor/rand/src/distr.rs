//! Uniform sampling of primitive values and ranges.

use crate::Rng;

/// Types with a "standard" uniform distribution (`rng.random::<T>()`).
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`rng.random_range(a..b)`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling on `u64` widths.
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the top of the range keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as StandardUniform>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);
