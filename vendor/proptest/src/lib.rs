//! Std-only shim for the subset of the `proptest` API this workspace uses,
//! so property tests run with the offline registry set.
//!
//! Supported surface: the [`proptest!`] macro (`pat in strategy` arguments,
//! `prop_assert!`/`prop_assert_eq!`, early `return Ok(())`), the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, numeric
//! range strategies, tuple strategies, [`collection::vec`],
//! [`option::of`], and [`strategy::Just`].
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test seed (derived from the test name) and **failures do not
//! shrink** — the panic message reports the case number and seed instead.
//! The default case count is 96 per property; override with the
//! `PROPTEST_CASES` environment variable.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each function runs its body over many sampled
/// inputs. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    let __pt_strategy = ($($strat,)+);
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__pt_strategy, __pt_rng);
                    let mut __pt_case = || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __pt_case()
                });
            }
        )*
    };
}

/// Fails the current property case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
