//! `Option` strategies.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Strategy producing `Some(inner)` about 90% of the time (matching
/// upstream's default weighting) and `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        if rng.random_bool(0.9) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}
