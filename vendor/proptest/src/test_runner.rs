//! The case runner behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Number of cases per property (`PROPTEST_CASES` env override).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

/// FNV-1a, used to derive a stable per-test base seed from the test name.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `case` over `case_count()` deterministically seeded inputs,
/// panicking (with the case number and seed) on the first failure.
pub fn run(name: &str, mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
    let base = fnv1a(name);
    for i in 0..case_count() {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed on case {i} (seed {seed:#x}): {e}");
        }
    }
}
