//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::RngExt;

/// A generator of random values for property tests (no shrinking in this
/// shim — see the crate docs).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then sample from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, re-drawing otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
