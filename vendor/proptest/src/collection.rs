//! Collection strategies.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// A length specification for [`vec`]: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
